// Durable checkpoint/resume for the collection pipeline. The paper's
// sensor ran for 385 days; a purely in-memory Dataset discards the whole
// run on any crash. A checkpoint serializes the full dataset state —
// users, counters, contribution records, the bounded geocode memo, and
// the collection window — so a restarted collector resumes with
// statistics bit-identical to an uninterrupted run.
//
// On-disk format (all integers little-endian):
//
//	magic   [8]byte  "DSCKPT\x00" + version byte
//	length  uint64   payload byte count
//	crc32   uint32   IEEE CRC of the payload
//	payload []byte   gob-encoded checkpointState
//
// Saves are atomic: the snapshot is written to a temporary file in the
// target directory, synced, and renamed over the destination, so a crash
// mid-save leaves either the old snapshot or the new one — never a torn
// file. Loads verify magic, version, length, and checksum before
// decoding, so a torn or corrupted file fails loudly instead of silently
// skewing statistics.
package pipeline

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"donorsense/internal/geo"
	"donorsense/internal/obs/trace"
	"donorsense/internal/organ"
	"donorsense/internal/userstore"
)

// checkpointMagic identifies a donorsense checkpoint; the trailing byte
// is the format version.
var checkpointMagic = [8]byte{'D', 'S', 'C', 'K', 'P', 'T', 0, checkpointVersion}

// checkpointVersion is the format written by WriteCheckpoint. Version 4
// is version 3 (the user store as flat columns) plus the report engine's
// opaque analytics warm-start blob. Versions 3 and 2 (the legacy
// map-of-records payload) are still readable so older snapshots migrate
// on load.
const (
	checkpointVersion       = 4
	checkpointVersionV3     = 3
	checkpointVersionLegacy = 2
)

// ErrCheckpointCorrupt reports a snapshot that failed validation (bad
// magic, truncation, or checksum mismatch).
var ErrCheckpointCorrupt = errors.New("pipeline: checkpoint corrupt")

// checkpointUser mirrors the legacy (v2) per-user record for gob.
type checkpointUser struct {
	ID               int64
	StateCode        string
	GeoTagged        bool
	Tweets           int
	Mentions         [organ.Count]int
	ClinicalMentions int
	Hashtags         int
	FirstSeen        int64
	FirstTweetID     int64
}

// checkpointContribution mirrors tweetContribution.
type checkpointContribution struct {
	UserID    int64
	Mentions  [organ.Count]int8
	Clinical  int8
	Hashtags  int8
	Distinct  int8
	GeoTagged bool
}

// checkpointState is the legacy v2 gob payload: the complete
// serializable state of a Dataset with users as a map of records.
type checkpointState struct {
	Users          map[int64]checkpointUser
	TotalCollected int
	USTweets       int
	GeoTagged      int
	MentionSum     int
	FirstTweet     time.Time
	LastTweet      time.Time
	OrgansPerTweet map[int]int
	TrackDeletions bool
	Contributions  map[int64]checkpointContribution
	LocCache       map[string]geo.Location
	// Cursor is the feeding layer's stream position at snapshot time (see
	// Dataset.SetCursor); the shard supervisor's replay skip depends on
	// it surviving the round-trip.
	Cursor uint64
}

// checkpointStateV4 is the v4 gob payload: the user store as flat
// columns (one slice per field, row-major mention matrix, append-ordered
// state intern table) plus the dataset counters and the analytics
// warm-start blob. Encoding the columns directly — no per-user structs —
// keeps the snapshot one contiguous write per column and lets the loader
// adopt the decoded slices without copying. The same struct decodes v3
// payloads: gob matches fields by name and leaves the absent Analytics
// field nil.
type checkpointStateV4 struct {
	UserIDs        []int64
	FirstSeen      []int64
	FirstTweetID   []int64
	Tweets         []int32
	Clinical       []int32
	Hashtags       []int32
	StateIdx       []uint8
	UserFlags      []uint8
	Mentions       []int32
	StateCodes     []string
	TotalCollected int
	USTweets       int
	GeoTagged      int
	MentionSum     int
	FirstTweet     time.Time
	LastTweet      time.Time
	OrgansPerTweet map[int]int
	TrackDeletions bool
	Contributions  map[int64]checkpointContribution
	LocCache       map[string]geo.Location
	// Cursor is the feeding layer's stream position at snapshot time (see
	// Dataset.SetCursor); the shard supervisor's replay skip depends on
	// it surviving the round-trip.
	Cursor uint64
	// Analytics is the report engine's opaque clustering warm-start blob
	// (Dataset.SetAnalyticsState) — new in v4; nil when no engine has run
	// or in snapshots loaded from v3 files.
	Analytics []byte
}

// snapshot captures the dataset into its serializable (v4) form. The
// column slices are borrowed views into the store; the snapshot must be
// encoded before the dataset is mutated again.
func (d *Dataset) snapshot() checkpointStateV4 {
	cols := d.store.Columns()
	st := checkpointStateV4{
		UserIDs:        cols.IDs,
		FirstSeen:      cols.FirstSeen,
		FirstTweetID:   cols.FirstTweetID,
		Tweets:         cols.Tweets,
		Clinical:       cols.Clinical,
		Hashtags:       cols.Hashtags,
		StateIdx:       cols.StateIdx,
		UserFlags:      cols.Flags,
		Mentions:       cols.Mentions,
		StateCodes:     cols.StateCodes,
		TotalCollected: d.totalCollected,
		USTweets:       d.usTweets,
		GeoTagged:      d.geoTagged,
		MentionSum:     d.mentionSum,
		FirstTweet:     d.firstTweet,
		LastTweet:      d.lastTweet,
		OrgansPerTweet: make(map[int]int, len(d.organsPerTweet)),
		TrackDeletions: d.contributions != nil,
		LocCache:       make(map[string]geo.Location, d.locCache.len()),
		Cursor:         d.cursor,
		Analytics:      d.analytics,
	}
	for k, n := range d.organsPerTweet {
		st.OrgansPerTweet[k] = n
	}
	st.Contributions = snapshotContributions(d.contributions)
	d.locCache.each(func(k string, v geo.Location) { st.LocCache[k] = v })
	return st
}

// snapshotContributions converts the delete-tracking records (nil stays
// nil: tracking disabled).
func snapshotContributions(contribs map[int64]tweetContribution) map[int64]checkpointContribution {
	if contribs == nil {
		return nil
	}
	out := make(map[int64]checkpointContribution, len(contribs))
	for id, c := range contribs {
		out[id] = checkpointContribution{
			UserID:    c.userID,
			Mentions:  c.mentions,
			Clinical:  c.clinical,
			Hashtags:  c.hashtags,
			Distinct:  c.distinct,
			GeoTagged: c.geoTagged,
		}
	}
	return out
}

// restoreCommon applies the non-user fields shared by both snapshot
// versions to a fresh dataset.
func restoreCommon(d *Dataset, totalCollected, usTweets, geoTagged, mentionSum int,
	firstTweet, lastTweet time.Time, organsPerTweet map[int]int,
	trackDeletions bool, contribs map[int64]checkpointContribution,
	locCache map[string]geo.Location, cursor uint64) {
	d.totalCollected = totalCollected
	d.usTweets = usTweets
	d.geoTagged = geoTagged
	d.mentionSum = mentionSum
	d.firstTweet = firstTweet
	d.lastTweet = lastTweet
	d.cursor = cursor
	for k, n := range organsPerTweet {
		d.organsPerTweet[k] = n
	}
	if trackDeletions {
		d.TrackDeletions()
		for id, c := range contribs {
			d.contributions[id] = tweetContribution{
				userID:    c.UserID,
				mentions:  c.Mentions,
				clinical:  c.Clinical,
				hashtags:  c.Hashtags,
				distinct:  c.Distinct,
				geoTagged: c.GeoTagged,
			}
		}
	}
	for k, v := range locCache {
		d.locCache.put(k, v)
	}
}

// restore rebuilds a fresh dataset from a decoded v3/v4 snapshot,
// adopting the decoded column slices directly into the store.
func restore(st checkpointStateV4) (*Dataset, error) {
	store, err := userstore.FromColumns(organ.Count, userstore.Columns{
		IDs:          st.UserIDs,
		FirstSeen:    st.FirstSeen,
		FirstTweetID: st.FirstTweetID,
		Tweets:       st.Tweets,
		Clinical:     st.Clinical,
		Hashtags:     st.Hashtags,
		StateIdx:     st.StateIdx,
		Flags:        st.UserFlags,
		Mentions:     st.Mentions,
		StateCodes:   st.StateCodes,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCheckpointCorrupt, err)
	}
	d := NewDataset()
	d.store = store
	d.analytics = st.Analytics
	restoreCommon(d, st.TotalCollected, st.USTweets, st.GeoTagged, st.MentionSum,
		st.FirstTweet, st.LastTweet, st.OrgansPerTweet,
		st.TrackDeletions, st.Contributions, st.LocCache, st.Cursor)
	return d, nil
}

// restoreLegacy rebuilds a dataset from a decoded v2 snapshot: the map
// of user records is folded into a fresh columnar store. Store row order
// after a migration is map-iteration order — unspecified, and invisible:
// every consumer either sorts by user id or aggregates
// order-independently.
func restoreLegacy(st checkpointState) *Dataset {
	d := NewDataset()
	for id, u := range st.Users {
		var flags uint8
		if u.GeoTagged {
			flags = userstore.FlagGeoTagged
		}
		row := d.store.Insert(id, u.StateCode, flags, u.FirstSeen, u.FirstTweetID)
		d.store.AddCounts(row, int32(u.Tweets), int32(u.ClinicalMentions), int32(u.Hashtags))
		mrow := d.store.MentionsRow(row)
		for i, m := range u.Mentions {
			mrow[i] = int32(m)
		}
	}
	restoreCommon(d, st.TotalCollected, st.USTweets, st.GeoTagged, st.MentionSum,
		st.FirstTweet, st.LastTweet, st.OrgansPerTweet,
		st.TrackDeletions, st.Contributions, st.LocCache, st.Cursor)
	return d
}

// WriteCheckpoint serializes the dataset to w in the checkpoint format.
func (d *Dataset) WriteCheckpoint(w io.Writer) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(d.snapshot()); err != nil {
		return fmt.Errorf("pipeline: encode checkpoint: %w", err)
	}
	if _, err := w.Write(checkpointMagic[:]); err != nil {
		return fmt.Errorf("pipeline: write checkpoint: %w", err)
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.ChecksumIEEE(payload.Bytes()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pipeline: write checkpoint: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("pipeline: write checkpoint: %w", err)
	}
	return nil
}

// ReadCheckpoint deserializes a dataset from r, verifying the header and
// checksum. It returns ErrCheckpointCorrupt (wrapped) for torn or
// tampered snapshots.
func ReadCheckpoint(r io.Reader) (*Dataset, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCheckpointCorrupt, err)
	}
	if [7]byte(magic[:7]) != [7]byte(checkpointMagic[:7]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCheckpointCorrupt)
	}
	version := magic[7]
	if version != checkpointVersion && version != checkpointVersionV3 &&
		version != checkpointVersionLegacy {
		return nil, fmt.Errorf("pipeline: checkpoint version %d not supported (want %d..%d)",
			version, checkpointVersionLegacy, checkpointVersion)
	}
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCheckpointCorrupt, err)
	}
	length := binary.LittleEndian.Uint64(hdr[0:8])
	sum := binary.LittleEndian.Uint32(hdr[8:12])
	const maxCheckpoint = 1 << 32 // sanity bound against a corrupted length
	if length > maxCheckpoint {
		return nil, fmt.Errorf("%w: implausible payload length %d", ErrCheckpointCorrupt, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated payload: %v", ErrCheckpointCorrupt, err)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCheckpointCorrupt)
	}
	if version == checkpointVersionLegacy {
		var st checkpointState
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&st); err != nil {
			return nil, fmt.Errorf("%w: decode: %v", ErrCheckpointCorrupt, err)
		}
		return restoreLegacy(st), nil
	}
	// v3 and v4 share the decode path: a v3 payload simply lacks the
	// Analytics field, which gob leaves nil.
	var st checkpointStateV4
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&st); err != nil {
		return nil, fmt.Errorf("%w: decode: %v", ErrCheckpointCorrupt, err)
	}
	return restore(st)
}

// CheckpointBackupPath returns the path of the last-good backup snapshot
// SaveCheckpoint keeps beside path.
func CheckpointBackupPath(path string) string { return path + ".bak" }

// ShardCheckpointPath returns the checkpoint path of one collection
// shard: "<base>-shard-<i>". Every shard owns its file; nothing is
// shared between shards.
func ShardCheckpointPath(base string, shard int) string {
	return fmt.Sprintf("%s-shard-%d", base, shard)
}

// SaveCheckpoint atomically writes the dataset snapshot to path: the
// bytes land in a temporary file in the same directory, are synced to
// stable storage, and are renamed over path in one step; the parent
// directory is then fsynced so a power loss cannot lose the rename. The
// previous snapshot, when one exists, is kept as path.bak — the
// last-good fallback LoadCheckpoint uses when the primary fails its
// checksum. When metrics are attached the save duration, snapshot size,
// and success/failure are recorded.
func (d *Dataset) SaveCheckpoint(path string) (err error) {
	var start time.Time
	var written countingWriter
	// The save span parents onto the last sampled tweet folded since the
	// previous save, completing that tweet's waterfall through to
	// durability. The pending context is consumed either way so the next
	// save doesn't re-parent onto an already-covered trace.
	if sp := d.startSpan("checkpoint.save", d.pendingTrace); sp != nil {
		defer func() {
			sp.SetInt("bytes", written.n)
			if err != nil {
				sp.SetAttr("error", err.Error())
			}
			sp.End()
		}()
	}
	d.pendingTrace = trace.SpanContext{}
	if m := d.metrics; m != nil {
		start = time.Now()
		defer func() {
			if err != nil {
				m.ckptErrors.Inc()
				return
			}
			m.ckptSaves.Inc()
			m.ckptSeconds.Since(start)
			m.ckptBytes.Set(float64(written.n))
			m.ckptLast.Set(float64(time.Now().Unix()))
		}()
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("pipeline: checkpoint temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	written.w = tmp
	if err := d.WriteCheckpoint(&written); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("pipeline: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("pipeline: close checkpoint: %w", err)
	}
	// Demote the current snapshot to the last-good backup before
	// publishing the new one. A crash between the two renames leaves only
	// the backup; LoadCheckpoint falls back to it.
	if _, err := os.Stat(path); err == nil {
		if err := os.Rename(path, CheckpointBackupPath(path)); err != nil {
			return fmt.Errorf("pipeline: rotate checkpoint backup: %w", err)
		}
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("pipeline: publish checkpoint: %w", err)
	}
	// Sync the directory so the renames themselves are durable: without
	// it a power loss can forget the publish even though the data blocks
	// were fsynced.
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("pipeline: sync checkpoint dir: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory, making its entry operations (renames,
// creates) durable.
func syncDir(dir string) error {
	df, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer df.Close()
	return df.Sync()
}

// countingWriter counts the bytes that pass through to w — the
// checkpoint-size gauge's source.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// LoadCheckpoint reads a dataset snapshot from path, falling back to the
// last-good backup when the primary is corrupt. A missing file (with no
// backup) is reported with os.ErrNotExist (start fresh); an unreadable
// pair with ErrCheckpointCorrupt.
func LoadCheckpoint(path string) (*Dataset, error) {
	d, _, err := LoadCheckpointFallback(path)
	return d, err
}

// LoadCheckpointFallback is LoadCheckpoint with the fallback made
// visible: usedBackup reports that the primary snapshot was corrupt (or
// missing after a crash between the backup rotation and the publish
// rename) and the dataset was restored from path.bak instead. Callers
// should log it loudly and count it — a fallback trades the tail of the
// collection (everything after the previous save) for liveness.
func LoadCheckpointFallback(path string) (d *Dataset, usedBackup bool, err error) {
	d, primaryErr := loadCheckpointFile(path)
	if primaryErr == nil {
		return d, false, nil
	}
	// Fall back only for failure modes a crash can produce: a torn or
	// corrupted primary, or a primary missing while a backup survives. A
	// version mismatch is a config problem and surfaces as-is.
	if !errors.Is(primaryErr, ErrCheckpointCorrupt) && !os.IsNotExist(primaryErr) {
		return nil, false, primaryErr
	}
	b, backupErr := loadCheckpointFile(CheckpointBackupPath(path))
	if backupErr != nil {
		return nil, false, primaryErr
	}
	return b, true, nil
}

// loadCheckpointFile reads and validates one snapshot file.
func loadCheckpointFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := ReadCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	return d, nil
}
