package pipeline

import (
	"math/rand"
	"testing"

	"donorsense/internal/cluster"
	"donorsense/internal/core"
	"donorsense/internal/geo"
	"donorsense/internal/organ"
	"donorsense/internal/text"
	"donorsense/internal/twitter"
)

// The differential oracle: the map-of-pointer-structs user store the
// columnar store replaced, re-implemented test-side with the exact old
// fold semantics. Every paper statistic computed from the real Dataset —
// Table I, the Figure 2 histograms, the attention matrix, the state
// signatures, the relative risks, and the cluster assignments — must be
// bit-identical to the oracle's, across sequential, -workers, and
// -shards runs.

// mapStoreOracle replays the pre-columnar Dataset fold over a tweet
// stream.
type mapStoreOracle struct {
	extractor *text.Extractor
	geocoder  *geo.Geocoder
	locCache  map[string]geo.Location

	users map[int64]*UserRecord

	totalCollected int
	usTweets       int
	geoTagged      int
	mentionSum     int
	first, last    int64 // UnixNano window, 0 = unset
	firstSet       bool
	organsPerTweet map[int]int
}

func newMapStoreOracle() *mapStoreOracle {
	return &mapStoreOracle{
		extractor:      text.NewExtractor(),
		geocoder:       geo.NewGeocoder(),
		locCache:       make(map[string]geo.Location),
		users:          make(map[int64]*UserRecord),
		organsPerTweet: make(map[int]int),
	}
}

func (o *mapStoreOracle) locate(t twitter.Tweet) (geo.Location, bool) {
	if t.HasCoordinates {
		if l, ok := o.geocoder.Reverse(t.Coordinates.Lat, t.Coordinates.Lon); ok {
			return l, true
		}
		return geo.Location{}, false
	}
	if l, ok := o.locCache[t.User.Location]; ok {
		return l, false
	}
	l := o.geocoder.Locate(t.User.Location)
	o.locCache[t.User.Location] = l
	return l, false
}

func (o *mapStoreOracle) process(t twitter.Tweet) {
	ex := o.extractor.Extract(t.Text)
	if !ex.InContext() {
		return
	}
	o.totalCollected++
	loc, viaGeoTag := o.locate(t)
	if !loc.IsUSState() {
		return
	}
	o.usTweets++
	if viaGeoTag {
		o.geoTagged++
	}
	ns := t.CreatedAt.UnixNano()
	if !o.firstSet || ns < o.first {
		o.first = ns
		o.firstSet = true
	}
	if ns > o.last {
		o.last = ns
	}
	u := o.users[t.User.ID]
	if u == nil {
		u = &UserRecord{ID: t.User.ID, StateCode: loc.StateCode, GeoTagged: viaGeoTag,
			FirstSeen: ns, FirstTweetID: t.ID}
		o.users[t.User.ID] = u
	}
	u.Tweets++
	u.ClinicalMentions += ex.ClinicalMentions
	u.Hashtags += ex.Hashtags
	distinct := 0
	for i, m := range ex.Mentions {
		u.Mentions[i] += m
		if m > 0 {
			distinct++
		}
	}
	o.organsPerTweet[distinct]++
	o.mentionSum += distinct
}

// attention builds Û the old way: the map-based AttentionBuilder.
func (o *mapStoreOracle) attention(t *testing.T) *core.Attention {
	t.Helper()
	b := core.NewAttentionBuilder()
	for id, u := range o.users {
		b.Observe(id, u.Mentions)
	}
	att, err := b.Build()
	if err != nil {
		t.Fatalf("oracle attention: %v", err)
	}
	return att
}

func (o *mapStoreOracle) stateOf() map[int64]string {
	out := make(map[int64]string, len(o.users))
	for id, u := range o.users {
		out[id] = u.StateCode
	}
	return out
}

// assertMatchesOracle checks every paper statistic of d bit-for-bit
// against the oracle.
func assertMatchesOracle(t *testing.T, label string, d *Dataset, o *mapStoreOracle) {
	t.Helper()

	// Table I scalars (floats compared with ==, not a tolerance).
	st := d.Stats()
	if st.TweetsCollected != o.usTweets || st.TotalCollected != o.totalCollected ||
		st.Users != len(o.users) || st.GeoTagRate != float64(o.geoTagged)/float64(o.usTweets) ||
		st.OrgansPerTweet != float64(o.mentionSum)/float64(o.usTweets) {
		t.Errorf("%s: Table I diverges from oracle: %+v", label, st)
	}
	oOrgansPerUser := 0
	for _, u := range o.users {
		oOrgansPerUser += u.DistinctOrgans()
	}
	if st.OrgansPerUser != float64(oOrgansPerUser)/float64(len(o.users)) {
		t.Errorf("%s: organs/user %v diverges", label, st.OrgansPerUser)
	}

	// Per-user records.
	if d.Users() != len(o.users) {
		t.Fatalf("%s: %d users, oracle %d", label, d.Users(), len(o.users))
	}
	d.EachUser(func(u *UserRecord) {
		ou := o.users[u.ID]
		if ou == nil || *ou != *u {
			t.Fatalf("%s: user %d: %+v, oracle %+v", label, u.ID, u, ou)
		}
	})

	// Figure 2 histograms.
	var oPerOrgan [organ.Count]int
	var oMultiUsers [organ.Count]int
	for _, u := range o.users {
		for i, m := range u.Mentions {
			if m > 0 {
				oPerOrgan[i]++
			}
		}
		if k := u.DistinctOrgans(); k >= 1 && k <= organ.Count {
			oMultiUsers[k-1]++
		}
	}
	if d.UsersPerOrgan() != oPerOrgan {
		t.Errorf("%s: users-per-organ diverges", label)
	}
	var oMultiTweets [organ.Count]int
	for k, n := range o.organsPerTweet {
		if k >= 1 && k <= organ.Count {
			oMultiTweets[k-1] = n
		}
	}
	mt, mu := d.MultiOrganHistogram()
	if mt != oMultiTweets || mu != oMultiUsers {
		t.Errorf("%s: multi-organ histogram diverges", label)
	}

	// Attention: same users, same row order, bit-identical Û.
	att, err := d.BuildAttention()
	if err != nil {
		t.Fatalf("%s: attention: %v", label, err)
	}
	oatt := o.attention(t)
	if att.Users() != oatt.Users() {
		t.Fatalf("%s: attention rows %d, oracle %d", label, att.Users(), oatt.Users())
	}
	gotIDs, wantIDs := att.UserIDs(), oatt.UserIDs()
	for r := range gotIDs {
		if gotIDs[r] != wantIDs[r] {
			t.Fatalf("%s: attention row %d id %d, oracle %d", label, r, gotIDs[r], wantIDs[r])
		}
		gr, wr := att.Matrix().RowView(r), oatt.Matrix().RowView(r)
		for c := range gr {
			if gr[c] != wr[c] {
				t.Fatalf("%s: Û[%d,%d] = %v, oracle %v", label, r, c, gr[c], wr[c])
			}
		}
	}

	// State signatures (Figure 4): float-exact K.
	stateOf := o.stateOf()
	gotRC, err1 := core.CharacterizeRegionsFunc(att, d.StateLookup())
	wantRC, err2 := core.CharacterizeRegions(oatt, stateOf)
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("%s: region errors diverge: %v vs %v", label, err1, err2)
	}
	if err1 == nil {
		for s := 0; s < len(wantRC.StateCodes); s++ {
			gr, wr := gotRC.K.RowView(s), wantRC.K.RowView(s)
			for c := range gr {
				if gr[c] != wr[c] {
					t.Fatalf("%s: K[%s,%d] = %v, oracle %v", label, wantRC.StateCodes[s], c, gr[c], wr[c])
				}
			}
		}
	}

	// Relative risks (Figure 5): bit-identical estimates and intervals.
	gotH, err1 := core.HighlightOrgansFunc(att, d.StateLookup())
	wantH, err2 := core.HighlightOrgans(oatt, stateOf)
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("%s: highlight errors diverge: %v vs %v", label, err1, err2)
	}
	if err1 == nil {
		for s := range wantH.Risks {
			for j := range wantH.Risks[s] {
				if gotH.Risks[s][j] != wantH.Risks[s][j] {
					t.Fatalf("%s: RR[%s][%d] = %+v, oracle %+v", label,
						wantH.StateCodes[s], j, gotH.Risks[s][j], wantH.Risks[s][j])
				}
			}
		}
	}
	gotW, err1 := core.WinnerTakesAllFunc(att, d.StateLookup())
	wantW, err2 := core.WinnerTakesAll(oatt, stateOf)
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("%s: winner-takes-all errors diverge: %v vs %v", label, err1, err2)
	}
	for code, want := range wantW {
		if gotW[code] != want {
			t.Errorf("%s: winner[%s] = %v, oracle %v", label, code, gotW[code], want)
		}
	}

	// Cluster assignments (Figure 7): identical labels row for row.
	if att.Users() >= 12 {
		cfg := cluster.KMeansConfig{K: 12, Seed: 1, Restarts: 2}
		gotKM, err1 := cluster.KMeansDense(att.Matrix(), cfg)
		wantKM, err2 := cluster.KMeansDense(oatt.Matrix(), cfg)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: kmeans: %v / %v", label, err1, err2)
		}
		for r := range wantKM.Labels {
			if gotKM.Labels[r] != wantKM.Labels[r] {
				t.Fatalf("%s: cluster label row %d = %d, oracle %d", label, r, gotKM.Labels[r], wantKM.Labels[r])
			}
		}
	}
}

// TestColumnarMatchesMapOracle runs the full differential suite in the
// three execution modes the acceptance criteria name: sequential,
// parallel workers, and a ≥4-shard partition merged in shuffled orders.
func TestColumnarMatchesMapOracle(t *testing.T) {
	tweets := sharedCorpus.Tweets
	oracle := newMapStoreOracle()
	for _, tw := range tweets {
		oracle.process(tw)
	}

	t.Run("sequential", func(t *testing.T) {
		assertMatchesOracle(t, "sequential", sharedDataset, oracle)
	})

	t.Run("workers", func(t *testing.T) {
		d := NewDataset()
		d.ProcessAll(tweets, 4)
		assertMatchesOracle(t, "workers=4", d, oracle)
	})

	t.Run("shards", func(t *testing.T) {
		const shards = 4
		// Merge in several shuffled orders; every order must match.
		for seed := int64(0); seed < 3; seed++ {
			order := rand.New(rand.NewSource(seed)).Perm(shards)
			// Re-shard: Merge consumes its argument's store, so each
			// round rebuilds the shard datasets.
			round := make([]*Dataset, shards)
			for i := range round {
				round[i] = NewDataset()
			}
			for _, tw := range tweets {
				round[twitter.ShardIndex(tw.User.ID, shards)].Process(tw)
			}
			merged := round[order[0]]
			for _, i := range order[1:] {
				merged.Merge(round[i])
			}
			assertMatchesOracle(t, "shards", merged, oracle)
		}
	})
}
