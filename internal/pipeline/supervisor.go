package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"donorsense/internal/obs/trace"
	"donorsense/internal/twitter"
)

// SupervisorConfig configures sharded, crash-tolerant collection.
type SupervisorConfig struct {
	// Shards is the number of hash partitions (>= 1). Tweets are routed by
	// user-id hash (twitter.ShardIndex), so every tweet of a user lands on
	// the same shard in arrival order.
	Shards int

	// CheckpointBase, when non-empty, enables durable per-shard state:
	// shard i checkpoints to ShardCheckpointPath(CheckpointBase, i). Empty
	// disables durability — a crashed shard restarts empty and its routed
	// tweets since startup are re-folded from the replay buffer only, so
	// tweets acked before the crash are lost. Chaos-tolerant runs should
	// always set it.
	CheckpointBase string

	// CheckpointEvery is the time-based checkpoint interval (default 30s).
	CheckpointEvery time.Duration
	// CheckpointEveryN additionally checkpoints after N folded tweets
	// (0 disables the count trigger).
	CheckpointEveryN int

	// HeartbeatTimeout is how long a shard with pending work may go
	// without progress before the monitor declares it stalled, abandons
	// the incarnation, and restarts from the last checkpoint (default
	// 10s; <= 0 disables stall detection).
	HeartbeatTimeout time.Duration
	// PollEvery is the monitor cadence; defaults to a quarter of the
	// shortest of HeartbeatTimeout and CheckpointEvery, clamped to
	// [1ms, 1s].
	PollEvery time.Duration

	// RestartBackoff is the delay before the first restart of a crashed
	// shard, doubling per consecutive failure up to MaxRestartBackoff
	// (defaults 50ms / 5s). A restart that makes durable progress resets
	// the backoff.
	RestartBackoff    time.Duration
	MaxRestartBackoff time.Duration

	// BufferCap bounds each shard's replay buffer (default 8192). When a
	// shard is down and its buffer fills, the router blocks — bounded
	// backpressure; tweets are never dropped. Healthy shards keep
	// consuming their own buffers meanwhile.
	BufferCap int

	// TrackDeletions enables delete-notice compliance on each shard
	// dataset.
	TrackDeletions bool

	Metrics *ShardMetrics
	Logger  *slog.Logger

	// Tracer, when set, continues sampled tweets' traces through each
	// shard's fold and checkpoint stages, tagging every span with the
	// shard and its restart incarnation (1-based, incremented per
	// restart) so a waterfall attributes work to the incarnation that
	// actually ran it.
	Tracer *trace.Tracer

	// SaveHook, when set, wraps every checkpoint save: the shard calls
	// SaveHook(shard, save) instead of save(). Chaos tests use it to
	// crash a shard before, during, or after the atomic rename.
	SaveHook func(shard int, save func() error) error
	// ProcessHook, when set, is invoked before each tweet is folded, with
	// the shard's 1-based sequence number. Chaos tests use it to stall or
	// panic a shard mid-stream.
	ProcessHook func(shard int, seq uint64, t *twitter.Tweet)
}

func (c *SupervisorConfig) withDefaults() SupervisorConfig {
	cfg := *c
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 30 * time.Second
	}
	if cfg.HeartbeatTimeout == 0 {
		cfg.HeartbeatTimeout = 10 * time.Second
	}
	if cfg.RestartBackoff <= 0 {
		cfg.RestartBackoff = 50 * time.Millisecond
	}
	if cfg.MaxRestartBackoff <= 0 {
		cfg.MaxRestartBackoff = 5 * time.Second
	}
	if cfg.BufferCap <= 0 {
		cfg.BufferCap = 8192
	}
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = 100 * time.Millisecond
		if cfg.HeartbeatTimeout > 0 && cfg.HeartbeatTimeout/4 < cfg.PollEvery {
			cfg.PollEvery = cfg.HeartbeatTimeout / 4
		}
		if cfg.CheckpointEvery/4 < cfg.PollEvery {
			cfg.PollEvery = cfg.CheckpointEvery / 4
		}
		if cfg.PollEvery < time.Millisecond {
			cfg.PollEvery = time.Millisecond
		}
	}
	return cfg
}

// Supervisor runs N shard workers over a hash-partitioned tweet stream
// and keeps them alive: it detects crashed or stalled shards via
// heartbeats, restarts them from their last checkpoint with bounded
// exponential backoff, and applies bounded backpressure (never loss)
// while a shard is down.
//
// Delivery to shard datasets is exactly-once across crashes: every
// routed tweet gets a per-shard sequence number, stays in the shard's
// replay buffer until a checkpoint covering it is durably saved, and a
// restarted incarnation skips buffered tweets at or below the restored
// dataset cursor. This holds even for a crash between the checkpoint
// rename and the acknowledgement.
type Supervisor struct {
	cfg     SupervisorConfig
	logger  *slog.Logger
	shards  []*shard
	started atomic.Bool
	ran     atomic.Bool
}

// shard is one hash partition: its replay buffer, the currently running
// incarnation, and health state read by the monitor.
type shard struct {
	id    int
	label string
	sup   *Supervisor

	mu   sync.Mutex
	cond *sync.Cond
	// buf holds routed-but-unacked tweets; buf[0] has sequence baseSeq.
	// Tweets are acked (trimmed) only once a checkpoint covering them is
	// durably on disk.
	buf     []twitter.Tweet
	baseSeq uint64
	closed  bool // upstream drained; shard finishes after its buffer
	cur     *incarnation
	// pos is the sequence of the last tweet the current incarnation
	// folded; inflight marks it busy folding or saving. The monitor
	// combines them with lastBeat to tell "stuck" from "idle".
	pos      uint64
	inflight bool
	lastBeat time.Time
	done     bool
	final    *Dataset
	restarts int
	stalls   int
	// incarnations counts run attempts (1 = the original); the current
	// incarnation's number tags its spans and ShardStatus.
	incarnations int

	// preload carries the checkpoint Run loaded for sequence alignment to
	// the first incarnation, saving a duplicate disk read.
	preload       *Dataset
	preloadBackup bool

	// saveMu serializes checkpoint saves across incarnations so an
	// abandoned (stalled, not dead) incarnation cannot interleave a stale
	// write with its replacement's.
	saveMu sync.Mutex
}

// incarnation is one run attempt of a shard worker.
type incarnation struct {
	crashed atomic.Bool // killed by Kill or the stall monitor
	// abandoned is closed by the monitor when it gives up on a stalled
	// incarnation, letting the manager restart without waiting for the
	// wedged goroutine.
	abandoned chan struct{}
	// progressed records a durable checkpoint ack; it resets restart
	// backoff.
	progressed atomic.Bool
}

var (
	errShardKilled = errors.New("pipeline: shard incarnation killed")
	errShardStale  = errors.New("pipeline: stale shard incarnation")
)

// NewSupervisor validates the configuration and builds an idle
// supervisor; Run starts it.
func NewSupervisor(cfg SupervisorConfig) (*Supervisor, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("pipeline: supervisor needs >= 1 shard, got %d", cfg.Shards)
	}
	s := &Supervisor{cfg: cfg.withDefaults(), logger: cfg.Logger}
	if s.logger == nil {
		s.logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		sh := &shard{id: i, label: strconv.Itoa(i), sup: s, baseSeq: 1}
		sh.cond = sync.NewCond(&sh.mu)
		s.shards[i] = sh
		if m := s.cfg.Metrics; m != nil {
			m.touch(sh.label)
		}
	}
	return s, nil
}

// Run routes the stream across the shards until it closes or ctx is
// cancelled, then waits for every shard to drain, take a final
// checkpoint, and retire. It is single-use.
func (s *Supervisor) Run(ctx context.Context, tweets <-chan twitter.Tweet) error {
	if !s.started.CompareAndSwap(false, true) {
		return errors.New("pipeline: supervisor already run")
	}
	defer s.ran.Store(true)

	// Align each shard's sequence space with its persisted cursor, so a
	// resumed session's replay skipping agrees with what the previous
	// session durably folded. The loaded dataset is handed to the first
	// incarnation as a preload.
	if s.cfg.CheckpointBase != "" {
		for _, sh := range s.shards {
			d, usedBackup, err := LoadCheckpointFallback(ShardCheckpointPath(s.cfg.CheckpointBase, sh.id))
			switch {
			case err == nil:
				sh.baseSeq = d.Cursor() + 1
				sh.preload, sh.preloadBackup = d, usedBackup
			case os.IsNotExist(err):
			default:
				return fmt.Errorf("pipeline: shard %d: restore checkpoint: %w", sh.id, err)
			}
		}
	}

	monStop := make(chan struct{})
	go s.monitor(monStop)
	go func() { // prompt wakeups on cancellation; monitor ticks cover the rest
		select {
		case <-ctx.Done():
			s.broadcastAll()
		case <-monStop:
		}
	}()

	var wg sync.WaitGroup
	for _, sh := range s.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			s.manage(ctx, sh)
		}(sh)
	}

	router := twitter.ShardRouter{Shards: s.cfg.Shards}
route:
	for {
		select {
		case <-ctx.Done():
			break route
		case t, ok := <-tweets:
			if !ok {
				break route
			}
			if err := s.shards[router.Shard(&t)].enqueue(ctx, t); err != nil {
				break route
			}
		}
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.closed = true
		sh.cond.Broadcast()
		sh.mu.Unlock()
	}
	wg.Wait()
	close(monStop)
	return nil
}

func (s *Supervisor) broadcastAll() {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.cond.Broadcast()
		sh.mu.Unlock()
	}
}

// Kill crashes the live incarnation of one shard — the fault injector
// the chaos tests drive. The supervisor restarts the shard from its last
// checkpoint. Reports whether a live incarnation was killed.
func (s *Supervisor) Kill(shardIndex int) bool {
	if shardIndex < 0 || shardIndex >= len(s.shards) {
		return false
	}
	sh := s.shards[shardIndex]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.cur == nil || sh.done {
		return false
	}
	sh.cur.crashed.Store(true)
	sh.cond.Broadcast()
	return true
}

// Merged folds every shard's final dataset into one and returns it. Call
// after Run returns; errors if any shard failed to retire cleanly.
func (s *Supervisor) Merged() (*Dataset, error) {
	if !s.ran.Load() {
		return nil, errors.New("pipeline: Merged before Run completed")
	}
	start := time.Now()
	var out *Dataset
	for _, sh := range s.shards {
		sh.mu.Lock()
		d, done := sh.final, sh.done
		sh.mu.Unlock()
		if !done || d == nil {
			return nil, fmt.Errorf("pipeline: shard %d did not retire cleanly", sh.id)
		}
		if out == nil {
			out = d
		} else {
			out.Merge(d)
		}
	}
	if m := s.cfg.Metrics; m != nil {
		m.mergeSeconds.Since(start)
		m.merges.Inc()
	}
	return out, nil
}

// ShardStatus is a point-in-time health snapshot of one shard.
type ShardStatus struct {
	Shard int
	Live  bool // an incarnation is currently running
	Done  bool
	// Incarnation is the current (or last) run attempt, 1-based; it
	// increments on every restart.
	Incarnation  int
	Restarts     int
	Stalls       int
	BufferDepth  int
	HeartbeatAge time.Duration
}

// Status reports every shard's health, for logs and health endpoints.
func (s *Supervisor) Status() []ShardStatus {
	now := time.Now()
	out := make([]ShardStatus, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		st := ShardStatus{
			Shard:       sh.id,
			Live:        sh.cur != nil,
			Done:        sh.done,
			Incarnation: sh.incarnations,
			Restarts:    sh.restarts,
			Stalls:      sh.stalls,
			BufferDepth: len(sh.buf),
		}
		if !sh.lastBeat.IsZero() {
			st.HeartbeatAge = now.Sub(sh.lastBeat)
		}
		sh.mu.Unlock()
		out[i] = st
	}
	return out
}

// manage keeps one shard alive: it launches incarnations, and on crash
// or abandonment restarts with bounded exponential backoff.
func (s *Supervisor) manage(ctx context.Context, sh *shard) {
	delay := s.cfg.RestartBackoff
	for {
		inc := &incarnation{abandoned: make(chan struct{})}
		sh.mu.Lock()
		if sh.done {
			sh.mu.Unlock()
			return
		}
		sh.cur = inc
		sh.incarnations++
		incNum := sh.incarnations
		sh.inflight = false
		sh.lastBeat = time.Now()
		sh.mu.Unlock()

		exit := make(chan error, 1)
		go func() { exit <- sh.run(ctx, inc, incNum) }()
		var err error
		select {
		case err = <-exit:
		case <-inc.abandoned:
			err = fmt.Errorf("shard %d heartbeat stale for %s with pending work", sh.id, s.cfg.HeartbeatTimeout)
		}
		sh.retire(inc)
		if err == nil || errors.Is(err, errShardStale) {
			return
		}
		if ctx.Err() != nil {
			s.logger.Warn("shard down at shutdown", "shard", sh.id, "err", err)
			return
		}
		if inc.progressed.Load() {
			delay = s.cfg.RestartBackoff
		}
		sh.mu.Lock()
		sh.restarts++
		sh.mu.Unlock()
		if m := s.cfg.Metrics; m != nil {
			m.restarts.With(sh.label).Inc()
		}
		s.logger.Warn("restarting shard", "shard", sh.id, "err", err, "backoff", delay)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return
		}
		if delay *= 2; delay > s.cfg.MaxRestartBackoff {
			delay = s.cfg.MaxRestartBackoff
		}
	}
}

// retire clears the shard's current-incarnation pointer if it still
// points at inc, so a wedged abandoned goroutine can never act as the
// live worker again.
func (sh *shard) retire(inc *incarnation) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.cur == inc {
		sh.cur = nil
	}
}

// enqueue appends one routed tweet to the shard's replay buffer,
// blocking (bounded backpressure) while the buffer is at capacity.
func (sh *shard) enqueue(ctx context.Context, t twitter.Tweet) error {
	m := sh.sup.cfg.Metrics
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for len(sh.buf) >= sh.sup.cfg.BufferCap {
		if err := ctx.Err(); err != nil {
			return err
		}
		if m != nil {
			m.bufferFull.With(sh.label).Inc()
		}
		sh.cond.Wait()
	}
	sh.buf = append(sh.buf, t)
	if m != nil {
		m.routed.With(sh.label).Inc()
		m.bufferDepth.With(sh.label).Set(float64(len(sh.buf)))
	}
	sh.cond.Broadcast()
	return nil
}

// ack trims the replay buffer through sequence upTo: those tweets are
// covered by a durable checkpoint and will never need replay.
func (sh *shard) ack(inc *incarnation, upTo uint64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.cur != inc || upTo < sh.baseSeq {
		return
	}
	drop := int(upTo - sh.baseSeq + 1)
	if drop > len(sh.buf) {
		drop = len(sh.buf)
	}
	sh.buf = sh.buf[:copy(sh.buf, sh.buf[drop:])]
	sh.baseSeq += uint64(drop)
	if m := sh.sup.cfg.Metrics; m != nil {
		m.bufferDepth.With(sh.label).Set(float64(len(sh.buf)))
	}
	sh.cond.Broadcast()
}

// finish publishes the incarnation's dataset as the shard's final result.
func (sh *shard) finish(inc *incarnation, d *Dataset) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.cur != inc {
		return
	}
	sh.final = d
	sh.done = true
	sh.cond.Broadcast()
}

func (sh *shard) isCurrent(inc *incarnation) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.cur == inc
}

// checkpointPath returns this shard's checkpoint path ("" when
// durability is disabled).
func (sh *shard) checkpointPath() string {
	if sh.sup.cfg.CheckpointBase == "" {
		return ""
	}
	return ShardCheckpointPath(sh.sup.cfg.CheckpointBase, sh.id)
}

// restore produces the incarnation's starting dataset: the preload Run
// cached (first incarnation only), else the shard checkpoint, else
// empty.
func (sh *shard) restore() (*Dataset, error) {
	sh.mu.Lock()
	d, usedBackup := sh.preload, sh.preloadBackup
	sh.preload, sh.preloadBackup = nil, false
	sh.mu.Unlock()
	if d == nil && sh.checkpointPath() != "" {
		var err error
		d, usedBackup, err = LoadCheckpointFallback(sh.checkpointPath())
		if err != nil {
			if !os.IsNotExist(err) {
				return nil, fmt.Errorf("shard %d: restore checkpoint: %w", sh.id, err)
			}
			d, usedBackup = nil, false
		}
	}
	if usedBackup {
		sh.sup.logger.Warn("shard restored from backup checkpoint", "shard", sh.id)
		if m := sh.sup.cfg.Metrics; m != nil {
			m.fallbacks.Inc()
		}
	}
	if d == nil {
		d = NewDataset()
		if sh.sup.cfg.TrackDeletions {
			d.TrackDeletions()
		}
	}
	return d, nil
}

// shardState is what the worker loop decided to do next.
type shardState int

const (
	shardFold shardState = iota
	shardCheckpoint
	shardDrained
	shardShutdown
)

// run is one incarnation of a shard worker: restore, fold buffered
// tweets past the restored cursor, checkpoint periodically, exit on
// drain, kill, or cancellation. Panics (from chaos hooks or bugs)
// surface as errors so the manager restarts the shard.
func (sh *shard) run(ctx context.Context, inc *incarnation, incNum int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("shard %d panicked: %v", sh.id, r)
		}
	}()
	cfg := &sh.sup.cfg
	d, err := sh.restore()
	if err != nil {
		return err
	}
	if cfg.Tracer != nil {
		// Scope this incarnation's spans before any fold: a waterfall then
		// shows which incarnation folded each sampled tweet, and a trace
		// that straddles a restart carries both incarnation numbers.
		d.SetTracer(cfg.Tracer)
		d.SetTraceScope(sh.label, incNum)
	}

	cursor := d.Cursor()
	lastSaved := cursor
	lastSave := time.Now()
	sinceSave := 0

	// checkpoint persists the dataset (unless nothing changed and this is
	// not the final save) and then acks the covered prefix of the replay
	// buffer. With durability disabled it just acks: the fold itself is
	// the only copy.
	checkpoint := func(final bool) error {
		if sh.checkpointPath() == "" {
			sh.ack(inc, cursor)
			return nil
		}
		if cursor == lastSaved && !final {
			return nil
		}
		save := func() error {
			sh.saveMu.Lock()
			defer sh.saveMu.Unlock()
			if !sh.isCurrent(inc) {
				return errShardStale
			}
			return d.SaveCheckpoint(sh.checkpointPath())
		}
		var serr error
		if cfg.SaveHook != nil {
			serr = cfg.SaveHook(sh.id, save)
		} else {
			serr = save()
		}
		if serr != nil {
			return serr
		}
		sh.ack(inc, cursor)
		lastSaved = cursor
		lastSave = time.Now()
		sinceSave = 0
		inc.progressed.Store(true)
		return nil
	}

	for {
		var t twitter.Tweet
		var seq uint64
		sh.mu.Lock()
		sh.inflight = false
		sh.pos = cursor
		sh.lastBeat = time.Now()
		state := shardFold
	wait:
		for {
			if sh.cur != inc {
				sh.mu.Unlock()
				return errShardStale
			}
			if inc.crashed.Load() {
				sh.mu.Unlock()
				return errShardKilled
			}
			if ctx.Err() != nil {
				state = shardShutdown
				break wait
			}
			if cursor+1 < sh.baseSeq {
				sh.mu.Unlock()
				return fmt.Errorf("shard %d: cursor %d behind replay buffer base %d (acked past checkpoint?)", sh.id, cursor, sh.baseSeq)
			}
			if off := cursor + 1 - sh.baseSeq; off < uint64(len(sh.buf)) {
				t, seq = sh.buf[off], cursor+1
				break wait
			}
			if sh.closed {
				state = shardDrained
				break wait
			}
			if cursor != lastSaved && time.Since(lastSave) >= cfg.CheckpointEvery {
				state = shardCheckpoint
				break wait
			}
			sh.cond.Wait()
		}
		if state != shardDrained && state != shardShutdown {
			sh.inflight = true
			sh.lastBeat = time.Now()
		}
		sh.mu.Unlock()

		switch state {
		case shardFold:
			if cfg.ProcessHook != nil {
				cfg.ProcessHook(sh.id, seq, &t)
			}
			d.Process(t)
			d.SetCursor(seq)
			cursor = seq
			sinceSave++
			if (cfg.CheckpointEveryN > 0 && sinceSave >= cfg.CheckpointEveryN) ||
				time.Since(lastSave) >= cfg.CheckpointEvery {
				if err := checkpoint(false); err != nil {
					return err
				}
			}
		case shardCheckpoint:
			if err := checkpoint(false); err != nil {
				return err
			}
		case shardDrained:
			if err := checkpoint(true); err != nil {
				return err
			}
			sh.finish(inc, d)
			return nil
		case shardShutdown:
			// Cancellation: persist what we have, best-effort, and retire
			// with the partial dataset so Merged still works.
			if err := checkpoint(true); err != nil {
				sh.sup.logger.Warn("shard final checkpoint failed at shutdown", "shard", sh.id, "err", err)
			}
			sh.finish(inc, d)
			return nil
		}
	}
}

// monitor is the heartbeat watchdog: every PollEvery it exports health
// gauges, wakes idle shards so time-based checkpoints fire, and abandons
// incarnations that sit on pending work past HeartbeatTimeout.
func (s *Supervisor) monitor(stop <-chan struct{}) {
	tick := time.NewTicker(s.cfg.PollEvery)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		now := time.Now()
		for _, sh := range s.shards {
			sh.mu.Lock()
			inc := sh.cur
			age := now.Sub(sh.lastBeat)
			pending := sh.inflight || sh.baseSeq+uint64(len(sh.buf)) > sh.pos+1
			if m := s.cfg.Metrics; m != nil {
				m.heartbeatAge.With(sh.label).Set(age.Seconds())
				m.bufferDepth.With(sh.label).Set(float64(len(sh.buf)))
			}
			stalled := inc != nil && pending && s.cfg.HeartbeatTimeout > 0 &&
				age > s.cfg.HeartbeatTimeout && !inc.crashed.Load()
			if stalled {
				inc.crashed.Store(true)
				close(inc.abandoned)
				sh.stalls++
			}
			sh.cond.Broadcast()
			sh.mu.Unlock()
			if stalled {
				if m := s.cfg.Metrics; m != nil {
					m.stalls.With(sh.label).Inc()
				}
				s.logger.Warn("abandoning stalled shard", "shard", sh.id, "heartbeatAge", age)
			}
		}
	}
}
