package pipeline

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// tableIEqual compares every Table I statistic bit-for-bit.
func tableIEqual(a, b TableI) bool {
	return a.Start.Equal(b.Start) && a.End.Equal(b.End) &&
		a.Days == b.Days &&
		a.TweetsCollected == b.TweetsCollected &&
		a.TotalCollected == b.TotalCollected &&
		a.Users == b.Users &&
		a.AvgTweetsPerDay == b.AvgTweetsPerDay &&
		a.AvgTweetsPerUser == b.AvgTweetsPerUser &&
		a.OrgansPerTweet == b.OrgansPerTweet &&
		a.OrgansPerUser == b.OrgansPerUser &&
		a.GeoTagRate == b.GeoTagRate
}

// assertDatasetsEqual checks every statistic the paper reports.
func assertDatasetsEqual(t *testing.T, got, want *Dataset) {
	t.Helper()
	if !tableIEqual(got.Stats(), want.Stats()) {
		t.Errorf("Table I mismatch:\n got %+v\nwant %+v", got.Stats(), want.Stats())
	}
	if got.UsersPerOrgan() != want.UsersPerOrgan() {
		t.Errorf("Figure 2(a) mismatch: %v vs %v", got.UsersPerOrgan(), want.UsersPerOrgan())
	}
	gt, gu := got.MultiOrganHistogram()
	wt, wu := want.MultiOrganHistogram()
	if gt != wt || gu != wu {
		t.Errorf("Figure 2(b) mismatch: (%v,%v) vs (%v,%v)", gt, gu, wt, wu)
	}
	if !reflect.DeepEqual(got.StateOf(), want.StateOf()) {
		t.Error("user → state map mismatch")
	}
}

func TestCheckpointCrashRestartIdentical(t *testing.T) {
	// Simulated crash/restart at an arbitrary mid-stream point: process a
	// prefix, checkpoint, "crash" (discard the dataset), reload from the
	// snapshot file, process the suffix. The statistics must be
	// bit-identical to an uninterrupted run.
	tweets := sharedCorpus.Tweets
	for _, cut := range []int{0, 1, len(tweets) / 3, len(tweets) / 2, len(tweets)} {
		path := filepath.Join(t.TempDir(), "state.ckpt")

		d1 := NewDataset()
		for _, tw := range tweets[:cut] {
			d1.Process(tw)
		}
		if err := d1.SaveCheckpoint(path); err != nil {
			t.Fatalf("cut %d: save: %v", cut, err)
		}
		d1 = nil // the crash

		d2, err := LoadCheckpoint(path)
		if err != nil {
			t.Fatalf("cut %d: load: %v", cut, err)
		}
		for _, tw := range tweets[cut:] {
			d2.Process(tw)
		}
		assertDatasetsEqual(t, d2, sharedDataset)
	}
}

func TestCheckpointPreservesDeletionTracking(t *testing.T) {
	d := NewDataset()
	d.TrackDeletions()
	var retainedID int64
	for _, tw := range sharedCorpus.Tweets[:2000] {
		if d.Process(tw) == CollectedUS {
			retainedID = tw.ID
		}
	}
	if retainedID == 0 {
		t.Skip("no US tweet in prefix")
	}
	var buf bytes.Buffer
	if err := d.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.DeletionTrackingEnabled() {
		t.Fatal("deletion tracking lost across checkpoint")
	}
	before := d2.USTweets()
	if !d2.Delete(retainedID) {
		t.Error("restored dataset lost a contribution record")
	}
	if d2.USTweets() != before-1 {
		t.Errorf("Delete after restore: usTweets %d, want %d", d2.USTweets(), before-1)
	}
	if d2.Delete(-12345) {
		t.Error("unknown status reported as deleted")
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	d := NewDataset()
	for _, tw := range sharedCorpus.Tweets[:1000] {
		d.Process(tw)
	}
	var buf bytes.Buffer
	if err := d.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":        {},
		"short header": good[:10],
		"torn payload": good[:len(good)-7],
		"bad magic":    append([]byte("NOTADSCK"), good[8:]...),
		"flipped byte": flipByte(good, len(good)-3),
		"flipped crc":  flipByte(good, 16),
	}
	for name, data := range cases {
		if _, err := ReadCheckpoint(bytes.NewReader(data)); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Errorf("%s: err = %v, want ErrCheckpointCorrupt", name, err)
		}
	}

	// A future version must be refused, but not as "corrupt".
	futur := append([]byte(nil), good...)
	futur[7] = checkpointVersion + 1
	if _, err := ReadCheckpoint(bytes.NewReader(futur)); err == nil || errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("future version: err = %v, want version error", err)
	}
}

func flipByte(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0xff
	return out
}

func TestSaveCheckpointAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckpt")

	d := NewDataset()
	for _, tw := range sharedCorpus.Tweets[:500] {
		d.Process(tw)
	}
	if err := d.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	want := d.Stats()

	// A "crash during save" leaves a stray temp file at worst; the
	// published snapshot must stay intact and no temp files must survive
	// a completed save.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp file %s survived a completed save", e.Name())
		}
	}

	// Overwrite with a second save mid-run; the file must never be torn:
	// simulate the crash by planting a half-written temp file, then
	// verify loads keep reading the last published snapshot.
	if err := os.WriteFile(path+".tmp-crashed", []byte("partial garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, tw := range sharedCorpus.Tweets[500:800] {
		d.Process(tw)
	}
	if err := d.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	want = d.Stats()

	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("load after simulated crash: %v", err)
	}
	if !tableIEqual(got.Stats(), want) {
		t.Errorf("snapshot stats %+v, want %+v", got.Stats(), want)
	}
}

func TestLoadCheckpointMissingFile(t *testing.T) {
	_, err := LoadCheckpoint(filepath.Join(t.TempDir(), "nope.ckpt"))
	if !os.IsNotExist(err) {
		t.Errorf("err = %v, want not-exist", err)
	}
}

// corruptFile flips one payload byte in place so the checksum fails.
func corruptFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, flipByte(data, len(data)-3), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestSaveCheckpointKeepsBackup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ckpt")

	d := NewDataset()
	for _, tw := range sharedCorpus.Tweets[:500] {
		d.Process(tw)
	}
	if err := d.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	firstStats := d.Stats()

	for _, tw := range sharedCorpus.Tweets[500:900] {
		d.Process(tw)
	}
	if err := d.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}

	// The backup must be the previous snapshot, verbatim.
	bak, err := LoadCheckpoint(CheckpointBackupPath(path))
	if err != nil {
		t.Fatalf("load backup: %v", err)
	}
	if !tableIEqual(bak.Stats(), firstStats) {
		t.Errorf("backup stats %+v, want first snapshot's %+v", bak.Stats(), firstStats)
	}

	// With an intact primary the fallback path must not engage.
	got, usedBackup, err := LoadCheckpointFallback(path)
	if err != nil {
		t.Fatal(err)
	}
	if usedBackup {
		t.Error("fallback engaged with an intact primary")
	}
	if !tableIEqual(got.Stats(), d.Stats()) {
		t.Errorf("primary stats %+v, want %+v", got.Stats(), d.Stats())
	}
}

func TestLoadCheckpointFallsBackToBackup(t *testing.T) {
	d := NewDataset()
	for _, tw := range sharedCorpus.Tweets[:500] {
		d.Process(tw)
	}
	firstStats := d.Stats()

	// Corrupt primary → backup wins, and the caller is told.
	t.Run("corrupt primary", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "state.ckpt")
		if err := d.SaveCheckpoint(path); err != nil {
			t.Fatal(err)
		}
		if err := d.SaveCheckpoint(path); err != nil { // rotates the backup
			t.Fatal(err)
		}
		corruptFile(t, path)
		got, usedBackup, err := LoadCheckpointFallback(path)
		if err != nil {
			t.Fatalf("fallback load: %v", err)
		}
		if !usedBackup {
			t.Error("usedBackup = false after corrupt primary")
		}
		if !tableIEqual(got.Stats(), firstStats) {
			t.Errorf("restored stats %+v, want backup's %+v", got.Stats(), firstStats)
		}
	})

	// Primary missing but backup present — the window between the two
	// renames of a crashed save.
	t.Run("missing primary", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "state.ckpt")
		if err := d.SaveCheckpoint(path); err != nil {
			t.Fatal(err)
		}
		if err := d.SaveCheckpoint(path); err != nil {
			t.Fatal(err)
		}
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
		got, usedBackup, err := LoadCheckpointFallback(path)
		if err != nil {
			t.Fatalf("fallback load: %v", err)
		}
		if !usedBackup {
			t.Error("usedBackup = false with a missing primary")
		}
		if !tableIEqual(got.Stats(), firstStats) {
			t.Errorf("restored stats %+v, want backup's %+v", got.Stats(), firstStats)
		}
	})

	// Both corrupt: fail loudly with the primary's corruption error.
	t.Run("both corrupt", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "state.ckpt")
		if err := d.SaveCheckpoint(path); err != nil {
			t.Fatal(err)
		}
		if err := d.SaveCheckpoint(path); err != nil {
			t.Fatal(err)
		}
		corruptFile(t, path)
		corruptFile(t, CheckpointBackupPath(path))
		if _, _, err := LoadCheckpointFallback(path); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Errorf("err = %v, want ErrCheckpointCorrupt", err)
		}
	})
}

// TestSyncDir pins the directory-fsync helper the publish rename relies
// on: it must succeed on a real directory and report a missing one.
func TestSyncDir(t *testing.T) {
	dir := t.TempDir()
	if err := syncDir(dir); err != nil {
		t.Errorf("syncDir(%s): %v", dir, err)
	}
	if err := syncDir(filepath.Join(dir, "nope")); !os.IsNotExist(err) {
		t.Errorf("syncDir(missing) = %v, want not-exist", err)
	}
	// A save into a fresh directory must leave primary (+ no temp files)
	// durably published.
	d := NewDataset()
	for _, tw := range sharedCorpus.Tweets[:200] {
		d.Process(tw)
	}
	path := filepath.Join(dir, "state.ckpt")
	if err := d.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}
