package pipeline

import (
	"time"

	"donorsense/internal/geo"
	"donorsense/internal/obs"
	"donorsense/internal/obs/trace"
)

// Pipeline stage labels for the stage-latency histogram.
const (
	StageIngest  = "ingest"  // whole collect → augment → filter pass
	StageExtract = "extract" // tokenize + Context × Subject matching
	StageLocate  = "locate"  // geo-tag reverse or profile geocode (cached)
)

// Metrics instruments the collection pipeline end to end: per-stage
// latency, per-outcome throughput, the USA-filter decision mix, geocode
// cache behaviour, dataset size gauges, and checkpoint durability. Every
// family is registered eagerly so the first scrape shows the complete
// schema with zero values.
type Metrics struct {
	tweets *obs.CounterVec // outcome: rejected | collected_non_us | collected_us
	stage  *obs.HistogramVec
	filter *obs.CounterVec // USA-filter decision causes

	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheRotations *obs.Counter
	cacheEntries   *obs.Gauge

	geoSeconds     *obs.Histogram
	geoResolutions *obs.CounterVec // source: profile|gps, accuracy

	users          *obs.Gauge
	usTweets       *obs.Gauge
	totalCollected *obs.Gauge
	userstoreRows  *obs.Gauge
	userstoreBytes *obs.Gauge

	ckptSaves   *obs.Counter
	ckptErrors  *obs.Counter
	ckptSeconds *obs.Histogram
	ckptBytes   *obs.Gauge
	ckptLast    *obs.Gauge
}

// NewMetrics registers the pipeline metric families on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		tweets: reg.CounterVec("donorsense_pipeline_tweets_total",
			"Tweets processed, by outcome (Table I's collected/retained split).", "outcome"),
		stage: reg.HistogramVec("donorsense_pipeline_stage_seconds",
			"Per-stage processing latency.", nil, "stage"),
		filter: reg.CounterVec("donorsense_pipeline_usa_filter_total",
			"USA-filter decisions on in-context tweets, by cause.", "cause"),
		cacheHits: reg.Counter("donorsense_pipeline_geocode_cache_hits_total",
			"Profile-location geocode memo hits."),
		cacheMisses: reg.Counter("donorsense_pipeline_geocode_cache_misses_total",
			"Profile-location geocode memo misses (full geocode runs)."),
		cacheRotations: reg.Counter("donorsense_pipeline_geocode_cache_rotations_total",
			"Two-generation geocode memo rotations (a full generation aged out)."),
		cacheEntries: reg.Gauge("donorsense_pipeline_geocode_cache_entries",
			"Entries currently held across both geocode memo generations."),
		geoSeconds: reg.Histogram("donorsense_geo_resolve_seconds",
			"Gazetteer resolution latency (cache misses and GPS points only).", nil),
		geoResolutions: reg.CounterVec("donorsense_geo_resolutions_total",
			"Gazetteer resolutions, by source and resulting accuracy.", "source", "accuracy"),
		users: reg.Gauge("donorsense_pipeline_users",
			"Retained US users (Table I)."),
		usTweets: reg.Gauge("donorsense_pipeline_us_tweets",
			"Retained US tweets (Table I)."),
		totalCollected: reg.Gauge("donorsense_pipeline_collected_tweets",
			"In-context tweets collected, US or not (Table I)."),
		userstoreRows: reg.Gauge("donorsense_userstore_rows",
			"Rows (retained users) in the columnar user store."),
		userstoreBytes: reg.Gauge("donorsense_userstore_bytes",
			"Retained bytes of the columnar user store: columns, hash index, and state bitsets."),
		ckptSaves: reg.Counter("donorsense_checkpoint_saves_total",
			"Checkpoint snapshots published successfully."),
		ckptErrors: reg.Counter("donorsense_checkpoint_errors_total",
			"Checkpoint saves that failed."),
		ckptSeconds: reg.Histogram("donorsense_checkpoint_save_seconds",
			"Wall time of one checkpoint save (serialize + fsync + rename).", nil),
		ckptBytes: reg.Gauge("donorsense_checkpoint_bytes",
			"Size of the last published checkpoint snapshot."),
		ckptLast: reg.Gauge("donorsense_checkpoint_last_save_timestamp_seconds",
			"Unix time of the last successful checkpoint save."),
	}
}

// SetMetrics attaches the instruments to the dataset: stage timers and
// outcome counters in Process, hit/miss/rotation on the geocode memo, and
// resolution observations on the geocoder. Call before processing; pass
// nil to detach.
func (d *Dataset) SetMetrics(m *Metrics) {
	d.metrics = m
	if m == nil {
		d.locCache.setOnRotate(nil)
		d.geocoder.OnLocate = nil
		d.geocoder.OnReverse = nil
		return
	}
	d.locCache.setOnRotate(m.cacheRotations.Inc)
	d.geocoder.OnLocate = func(loc geo.Location, dur time.Duration) {
		m.geoSeconds.Observe(dur.Seconds())
		m.geoResolutions.With("profile", loc.Accuracy.String()).Inc()
	}
	d.geocoder.OnReverse = func(loc geo.Location, ok bool, dur time.Duration) {
		m.geoSeconds.Observe(dur.Seconds())
		acc := loc.Accuracy.String()
		if !ok {
			acc = "none"
		}
		m.geoResolutions.With("gps", acc).Inc()
	}
	// Seed the size gauges so a resumed dataset reports its restored
	// state before the first processed tweet.
	m.updateSizes(d)
}

// observeOutcome folds one processed tweet into the throughput counters
// and size gauges. A sampled tweet additionally pins its trace ID as the
// ingest histogram's exemplar.
func (m *Metrics) observeOutcome(d *Dataset, o Outcome, elapsed time.Duration, tc trace.SpanContext) {
	m.tweets.With(outcomeLabel(o)).Inc()
	m.stage.With(StageIngest).ObserveExemplar(elapsed.Seconds(), exemplarID(tc))
	m.updateSizes(d)
}

// observeFold is observeOutcome's twin for the parallel path: the outcome
// counter plus the stage timings measured on the worker. The ingest stage
// records extract + locate worker time (the fold itself is map updates,
// negligible next to either). The filter counter only fires for
// in-context tweets, exactly as in Process. Size gauges are refreshed
// once per chunk via updateSizes, not here.
func (m *Metrics) observeFold(o Outcome, p prepared, hadGPS bool, tc trace.SpanContext) {
	ex := exemplarID(tc)
	m.tweets.With(outcomeLabel(o)).Inc()
	m.stage.With(StageExtract).ObserveExemplar(p.dExtract.Seconds(), ex)
	m.stage.With(StageIngest).ObserveExemplar((p.dExtract + p.dLocate).Seconds(), ex)
	if o != Rejected {
		m.stage.With(StageLocate).ObserveExemplar(p.dLocate.Seconds(), ex)
		m.filter.With(filterCause(hadGPS, p.loc, p.viaGeoTag)).Inc()
	}
}

// updateSizes refreshes the dataset size gauges, including the columnar
// store's row count and retained-byte footprint.
func (m *Metrics) updateSizes(d *Dataset) {
	m.users.Set(float64(d.store.Len()))
	m.usTweets.Set(float64(d.usTweets))
	m.totalCollected.Set(float64(d.totalCollected))
	m.cacheEntries.Set(float64(d.locCache.len()))
	m.userstoreRows.Set(float64(d.store.Len()))
	m.userstoreBytes.Set(float64(d.store.SizeBytes()))
}

// outcomeLabel maps an Outcome to its metric label (snake_case, stable).
func outcomeLabel(o Outcome) string {
	switch o {
	case Rejected:
		return "rejected"
	case CollectedNonUS:
		return "collected_non_us"
	case CollectedUS:
		return "collected_us"
	}
	return "unknown"
}

// filterCause classifies one USA-filter decision for the cause counter.
func filterCause(hadGPS bool, loc geo.Location, viaGeoTag bool) string {
	switch {
	case viaGeoTag:
		return "geotag_us"
	case hadGPS:
		return "geotag_foreign"
	case loc.IsUSState():
		return "profile_us"
	case loc.Country == "US":
		return "profile_us_unlocated" // "USA" with no resolvable state
	case loc.Accuracy == geo.AccuracyNone:
		return "profile_unresolved"
	default:
		return "profile_foreign"
	}
}
