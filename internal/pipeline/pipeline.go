// Package pipeline orchestrates the paper's three-step processing
// (§III-A): tweets are collected through the keyword filter, augmented
// with a location (GPS geo-tag when present, otherwise the geocoded
// profile location), and filtered again to retain USA users. On top of
// the retained set it builds the user-attention matrix and the dataset
// statistics of Table I and Figure 2.
//
// Processing is incremental: feed tweets one at a time (or from a stream
// channel via Collect) and snapshot statistics at any point — the
// "real-time social sensor" mode the paper's conclusion envisions.
package pipeline

import (
	"context"
	"time"

	"donorsense/internal/core"
	"donorsense/internal/geo"
	"donorsense/internal/obs/trace"
	"donorsense/internal/organ"
	"donorsense/internal/text"
	"donorsense/internal/twitter"
	"donorsense/internal/userstore"
)

// Outcome classifies what happened to one processed tweet.
type Outcome int

// Processing outcomes.
const (
	// Rejected: the tweet does not satisfy the Context × Subject
	// predicate (it should have been stopped by the stream filter; the
	// pipeline re-checks defensively).
	Rejected Outcome = iota
	// CollectedNonUS: in context, but the user could not be located to a
	// US state.
	CollectedNonUS
	// CollectedUS: in context and located to a US state; contributes to
	// the dataset.
	CollectedUS
)

// String returns the outcome name.
func (o Outcome) String() string {
	switch o {
	case Rejected:
		return "rejected"
	case CollectedNonUS:
		return "collected-non-us"
	case CollectedUS:
		return "collected-us"
	}
	return "outcome(?)"
}

// UserRecord aggregates everything the dataset retains about one US
// user. Since the columnar store became the backing representation it is
// a view type: EachUser materializes records from the column slices on
// the fly, and the store — not a map of these structs — owns the data.
type UserRecord struct {
	ID        int64
	StateCode string
	// GeoTagged reports whether the state came from a GPS geo-tag rather
	// than the profile location.
	GeoTagged bool
	Tweets    int
	Mentions  [organ.Count]int
	// ClinicalMentions counts organ mentions using clinical variants
	// (renal, hepatic, ...), and Hashtags counts hashtag tokens — the
	// behavioural signals the user-role analysis consumes.
	ClinicalMentions int
	Hashtags         int
	// FirstSeen (UnixNano of the creating tweet's timestamp) and
	// FirstTweetID identify the retained tweet that created this record.
	// They are the Merge tie-break key: when the same user id surfaces in
	// two datasets with conflicting identity fields (StateCode,
	// GeoTagged), the record whose first tweet is earlier — ties broken
	// by smaller tweet id — wins, independent of merge order. Stored as
	// an int64 rather than time.Time so UserRecord stays comparable with
	// == across a gob checkpoint round-trip.
	FirstSeen    int64
	FirstTweetID int64
}

// DistinctOrgans returns how many different organs the user mentioned.
func (u *UserRecord) DistinctOrgans() int {
	n := 0
	for _, m := range u.Mentions {
		if m > 0 {
			n++
		}
	}
	return n
}

// Dataset is the incrementally-built collection state. It is not safe for
// concurrent mutation; Collect owns it while running.
type Dataset struct {
	extractor *text.Extractor
	geocoder  *geo.Geocoder

	// locCache memoizes profile-location geocoding; profile strings
	// repeat heavily across tweets of the same user. It is bounded: a
	// 385-day run sees an unbounded stream of distinct (possibly
	// adversarial) profile strings, and an uncapped map is a
	// memory-exhaustion hazard. Sharded so ProcessAll / CollectParallel
	// workers can share it without contending on one lock.
	locCache *shardedLocCache

	// store holds every retained user columnar: an open-addressing id →
	// row index, parallel column slices for the scalar fields, the
	// row-major mention matrix the attention build consumes zero-copy,
	// and per-state bitset membership indices (ROADMAP item 4: tens of
	// bytes per user instead of a GC-scanned map of pointer records).
	store *userstore.Store

	totalCollected int // in-context tweets, US or not
	usTweets       int
	geoTagged      int // US tweets located via GPS

	firstTweet, lastTweet time.Time

	// cursor is an opaque stream position owned by the feeding layer: the
	// shard supervisor stores the sequence number of the last folded
	// tweet here so a checkpointed shard knows exactly how far into its
	// routed stream the snapshot reaches. The dataset itself never
	// interprets it.
	cursor uint64

	// organsPerTweet[k] = number of US tweets mentioning exactly k
	// distinct organs (k >= 1), for Figure 2(b).
	organsPerTweet map[int]int
	mentionSum     int // total distinct-organ mentions across US tweets

	// OnUSTweet, when set, is invoked for every retained US tweet with
	// its extraction — the hook downstream consumers (e.g. the temporal
	// sensor) use to observe the stream without re-parsing it.
	OnUSTweet func(t twitter.Tweet, ex text.Extraction)

	// contributions, when non-nil (TrackDeletions), maps retained status
	// IDs to their reversal records for delete-notice compliance.
	contributions map[int64]tweetContribution

	// metrics, when non-nil (SetMetrics), instruments every stage of
	// Process. Nil keeps the hot path branch-cheap and allocation-free.
	metrics *Metrics

	// tracer, when non-nil (SetTracer), continues sampled tweets' traces
	// through the processing stages; traceShard/traceIncarnation
	// (SetTraceScope) tag those spans with supervisor attribution.
	// pendingTrace is the last sampled tweet folded since the previous
	// checkpoint — the parent for the next checkpoint.save span.
	tracer           *trace.Tracer
	traceShard       string
	traceIncarnation int64
	pendingTrace     trace.SpanContext

	// analytics is the report engine's opaque warm-start blob
	// (SetAnalyticsState), persisted in v4 checkpoints so a restarted
	// process resumes clustering warm instead of cold.
	analytics []byte
}

// NewDataset returns an empty dataset.
func NewDataset() *Dataset {
	return &Dataset{
		extractor:      text.NewExtractor(),
		geocoder:       geo.NewGeocoder(),
		locCache:       newShardedLocCache(locCacheCap),
		store:          userstore.New(organ.Count),
		organsPerTweet: make(map[int]int),
	}
}

// Process runs one tweet through collect → augment → filter and folds it
// into the dataset. It returns what happened to the tweet.
func (d *Dataset) Process(t twitter.Tweet) Outcome {
	m := d.metrics
	if m == nil {
		return d.process(t)
	}
	start := time.Now()
	o := d.process(t)
	m.observeOutcome(d, o, time.Since(start), t.TraceCtx)
	return o
}

func (d *Dataset) process(t twitter.Tweet) Outcome {
	m := d.metrics
	var t0 time.Time
	if m != nil {
		t0 = time.Now()
	}
	sp := d.startSpan("ingest.extract", t.TraceCtx)
	ex := d.extractor.Extract(t.Text)
	sp.End()
	if m != nil {
		m.stage.With(StageExtract).ObserveExemplar(time.Since(t0).Seconds(), exemplarID(t.TraceCtx))
	}
	if !ex.InContext() {
		return Rejected
	}
	d.totalCollected++

	if m != nil {
		t0 = time.Now()
	}
	sp = d.startSpan("ingest.locate", t.TraceCtx)
	loc, viaGeoTag := d.locate(t)
	if sp != nil {
		sp.SetAttr("resolved", loc.String())
		sp.End()
	}
	if m != nil {
		m.stage.With(StageLocate).ObserveExemplar(time.Since(t0).Seconds(), exemplarID(t.TraceCtx))
		m.filter.With(filterCause(t.HasCoordinates, loc, viaGeoTag)).Inc()
	}
	fsp := d.startSpan("ingest.fold", t.TraceCtx)
	if !loc.IsUSState() {
		d.endFold(fsp, t.TraceCtx, CollectedNonUS)
		return CollectedNonUS
	}

	d.usTweets++
	if viaGeoTag {
		d.geoTagged++
	}
	if d.firstTweet.IsZero() || t.CreatedAt.Before(d.firstTweet) {
		d.firstTweet = t.CreatedAt
	}
	if t.CreatedAt.After(d.lastTweet) {
		d.lastTweet = t.CreatedAt
	}

	d.foldUSTweet(t, ex, loc.StateCode, viaGeoTag)
	d.endFold(fsp, t.TraceCtx, CollectedUS)
	return CollectedUS
}

// foldUSTweet applies one retained US tweet to the user store and the
// tweet-level aggregates. It is the shared tail of Process and the
// parallel fold path.
func (d *Dataset) foldUSTweet(t twitter.Tweet, ex text.Extraction, stateCode string, viaGeoTag bool) {
	row, ok := d.store.Find(t.User.ID)
	if !ok {
		var flags uint8
		if viaGeoTag {
			flags = userstore.FlagGeoTagged
		}
		row = d.store.Insert(t.User.ID, stateCode, flags, t.CreatedAt.UnixNano(), t.ID)
	}
	d.store.AddCounts(row, 1, int32(ex.ClinicalMentions), int32(ex.Hashtags))
	mrow := d.store.MentionsRow(row)
	distinct := 0
	for i, m := range ex.Mentions {
		mrow[i] += int32(m)
		if m > 0 {
			distinct++
		}
	}
	d.organsPerTweet[distinct]++
	d.mentionSum += distinct
	d.recordContribution(t.ID, t.User.ID, ex.Mentions, ex.ClinicalMentions, ex.Hashtags, distinct, viaGeoTag)
	if d.OnUSTweet != nil {
		d.OnUSTweet(t, ex)
	}
}

// locate augments the tweet with a location: the GPS geo-tag wins when
// present (precise but rare); otherwise the self-reported profile
// location is geocoded (cached by string).
func (d *Dataset) locate(t twitter.Tweet) (loc geo.Location, viaGeoTag bool) {
	if t.HasCoordinates {
		if l, ok := d.geocoder.Reverse(t.Coordinates.Lat, t.Coordinates.Lon); ok {
			return l, true
		}
		// A geo-tag outside the USA is decisive even if the profile
		// claims otherwise.
		return geo.Location{}, false
	}
	raw := t.User.Location
	if l, ok := d.locCache.get(raw); ok {
		if d.metrics != nil {
			d.metrics.cacheHits.Inc()
		}
		return l, false
	}
	if d.metrics != nil {
		d.metrics.cacheMisses.Inc()
	}
	l := d.geocoder.Locate(raw)
	d.locCache.put(raw, l)
	return l, false
}

// Collect drains tweets from the channel into the dataset until the
// channel closes or the context is cancelled. It returns the number of
// tweets processed.
func (d *Dataset) Collect(ctx context.Context, tweets <-chan twitter.Tweet) int {
	n := 0
	for {
		select {
		case <-ctx.Done():
			return n
		case t, ok := <-tweets:
			if !ok {
				return n
			}
			d.Process(t)
			n++
		}
	}
}

// Cursor returns the stream position last recorded with SetCursor (0 if
// never set). It is persisted in checkpoints.
func (d *Dataset) Cursor() uint64 { return d.cursor }

// SetCursor records an opaque stream position to be persisted with the
// next checkpoint. The shard supervisor calls it after every fold so
// crash recovery can replay exactly the tweets the snapshot misses.
func (d *Dataset) SetCursor(c uint64) { d.cursor = c }

// Users returns the number of retained US users.
func (d *Dataset) Users() int { return d.store.Len() }

// StoreFootprint reports the columnar user store's size: retained rows
// and the retained bytes of its columns, hash index, and state bitsets.
// It feeds the userstore gauge pair and the /statusz memory section.
func (d *Dataset) StoreFootprint() (rows int, bytes int64) {
	return d.store.Len(), d.store.SizeBytes()
}

// USTweets returns the number of retained US tweets.
func (d *Dataset) USTweets() int { return d.usTweets }

// TotalCollected returns all in-context tweets seen, US or not.
func (d *Dataset) TotalCollected() int { return d.totalCollected }

// GeoTagged returns how many retained US tweets were located via GPS.
func (d *Dataset) GeoTagged() int { return d.geoTagged }

// StateOf materializes the userID → state map. It allocates O(users);
// the analysis paths use StateLookup instead, which answers per-id
// queries straight off the store's hash index. StateOf remains for
// callers that genuinely want a snapshot map.
func (d *Dataset) StateOf() map[int64]string {
	out := make(map[int64]string, d.store.Len())
	d.EachUserState(func(id int64, code string) { out[id] = code })
	return out
}

// StateLookup returns an O(1) userID → state resolver backed by the
// store's hash index. The returned closure reads live store state; it is
// only valid while the dataset is not mutated concurrently.
func (d *Dataset) StateLookup() core.StateLookup {
	return func(id int64) (string, bool) {
		row, ok := d.store.Find(id)
		if !ok {
			return "", false
		}
		return d.store.StateCode(row), true
	}
}

// EachUserState calls fn with every retained user's id and state code,
// straight off the columns — no map allocation. Iteration order is
// unspecified.
func (d *Dataset) EachUserState(fn func(id int64, code string)) {
	for row := int32(0); row < int32(d.store.Len()); row++ {
		fn(d.store.ID(row), d.store.StateCode(row))
	}
}

// EachStateSlice iterates the per-state bitset indices: fn receives each
// interned state's code, its retained user count, and the column sums of
// its users' organ mentions. States whose users were all deleted are
// reported with zero counts.
func (d *Dataset) EachStateSlice(fn func(code string, users int, mentions [organ.Count]int64)) {
	var sums [organ.Count]int64
	for st := 0; st < d.store.StateCount(); st++ {
		idx := uint8(st)
		for i := range sums {
			sums[i] = 0
		}
		d.store.StateMentionSums(idx, sums[:])
		fn(d.store.StateCodeAt(st), d.store.StateUserCount(idx), sums)
	}
}

// BuildAttention constructs the normalized attention matrix Û over the
// retained users, straight from the store's id column and row-major
// mention matrix — no per-user map or copy-into-matrix step.
func (d *Dataset) BuildAttention() (*core.Attention, error) {
	return core.AttentionFromCounts(d.store.IDs(), d.store.Mentions())
}

// EachUser calls fn for every retained user. Iteration order is
// unspecified. The *UserRecord is a scratch view materialized from the
// columns and reused across calls: copy the struct (not the pointer) to
// retain it.
func (d *Dataset) EachUser(fn func(*UserRecord)) {
	var u UserRecord
	for row := int32(0); row < int32(d.store.Len()); row++ {
		d.fillUserRecord(&u, row)
		fn(&u)
	}
}

// LookupUser materializes the record of one user id. It reports false
// when the id is not retained.
func (d *Dataset) LookupUser(id int64) (UserRecord, bool) {
	row, ok := d.store.Find(id)
	if !ok {
		return UserRecord{}, false
	}
	var u UserRecord
	d.fillUserRecord(&u, row)
	return u, true
}

// fillUserRecord materializes one store row into a UserRecord.
func (d *Dataset) fillUserRecord(u *UserRecord, row int32) {
	u.ID = d.store.ID(row)
	u.StateCode = d.store.StateCode(row)
	u.GeoTagged = d.store.GeoTagged(row)
	u.Tweets = int(d.store.Tweets(row))
	u.ClinicalMentions = int(d.store.Clinical(row))
	u.Hashtags = int(d.store.Hashtags(row))
	u.FirstSeen = d.store.FirstSeen(row)
	u.FirstTweetID = d.store.FirstTweetID(row)
	for i, m := range d.store.MentionsRow(row) {
		u.Mentions[i] = int(m)
	}
}
