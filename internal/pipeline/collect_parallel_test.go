package pipeline

import (
	"context"
	"reflect"
	"testing"
	"time"

	"donorsense/internal/gen"
	"donorsense/internal/obs"
	"donorsense/internal/twitter"
)

// feed delivers a corpus over a channel the way a stream client does.
func feed(tweets []twitter.Tweet) <-chan twitter.Tweet {
	ch := make(chan twitter.Tweet, 64)
	go func() {
		for _, t := range tweets {
			ch <- t
		}
		close(ch)
	}()
	return ch
}

// assertDatasetsIdentical extends checkpoint_test's assertDatasetsEqual
// with the aggregate counters and per-user records.
func assertDatasetsIdentical(t *testing.T, got, want *Dataset) {
	t.Helper()
	assertDatasetsEqual(t, got, want)
	if got.Users() != want.Users() || got.USTweets() != want.USTweets() ||
		got.TotalCollected() != want.TotalCollected() || got.GeoTagged() != want.GeoTagged() {
		t.Fatalf("aggregate counters differ: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			got.Users(), got.USTweets(), got.TotalCollected(), got.GeoTagged(),
			want.Users(), want.USTweets(), want.TotalCollected(), want.GeoTagged())
	}
	if !reflect.DeepEqual(got.Stats(), want.Stats()) {
		t.Errorf("stats differ:\n%+v\n%+v", got.Stats(), want.Stats())
	}
	want.EachUser(func(u *UserRecord) {
		gu, ok := got.LookupUser(u.ID)
		if !ok || gu != *u {
			t.Fatalf("user %d differs: %+v vs %+v", u.ID, gu, u)
		}
	})
}

// TestCollectParallelMatchesCollect: the streaming parallel path must
// produce a bit-identical dataset to sequential Collect over the same
// delivery sequence — the Table I guarantee for live collection.
func TestCollectParallelMatchesCollect(t *testing.T) {
	corpus := gen.Generate(gen.DefaultConfig(0.01))

	seq := NewDataset()
	seqN := seq.Collect(context.Background(), feed(corpus.Tweets))

	par := NewDataset()
	parN := par.CollectParallel(context.Background(), feed(corpus.Tweets), CollectOptions{Workers: 4})

	if parN != seqN {
		t.Fatalf("parallel folded %d tweets, sequential %d", parN, seqN)
	}
	assertDatasetsIdentical(t, par, seq)
}

// TestCollectParallelWorkerOne: Workers == 1 must behave exactly like
// Collect, including the per-tweet OnFold cadence.
func TestCollectParallelWorkerOne(t *testing.T) {
	corpus := gen.Generate(gen.DefaultConfig(0.002))
	seq := NewDataset()
	seq.Collect(context.Background(), feed(corpus.Tweets))

	par := NewDataset()
	folds := 0
	n := par.CollectParallel(context.Background(), feed(corpus.Tweets), CollectOptions{
		Workers: 1,
		OnFold:  func(total int) bool { folds = total; return true },
	})
	if n != len(corpus.Tweets) || folds != n {
		t.Fatalf("folded %d (last callback %d), want %d", n, folds, len(corpus.Tweets))
	}
	assertDatasetsIdentical(t, par, seq)
}

// TestCollectParallelEarlyStop: OnFold returning false must stop the
// collection near the threshold (on a chunk boundary), not run the whole
// stream dry.
func TestCollectParallelEarlyStop(t *testing.T) {
	corpus := gen.Generate(gen.DefaultConfig(0.02))
	if len(corpus.Tweets) < 5000 {
		t.Fatalf("corpus too small for an early-stop test: %d", len(corpus.Tweets))
	}
	d := NewDataset()
	const stopAt = 500
	n := d.CollectParallel(context.Background(), feed(corpus.Tweets), CollectOptions{
		Workers: 4,
		OnFold:  func(total int) bool { return total < stopAt },
	})
	if n < stopAt {
		t.Errorf("stopped after %d tweets, threshold %d", n, stopAt)
	}
	// The stop may overshoot by at most one chunk beyond the threshold.
	if n >= stopAt+ingestChunkSize {
		t.Errorf("folded %d tweets, want < %d", n, stopAt+ingestChunkSize)
	}
}

// TestCollectParallelTicks: a tick delivered while the collector is idle
// must invoke OnTick on the folding goroutine.
func TestCollectParallelTicks(t *testing.T) {
	tweets := make(chan twitter.Tweet)
	ticks := make(chan time.Time, 1)
	ticked := make(chan int, 1)
	done := make(chan int, 1)
	d := NewDataset()
	go func() {
		done <- d.CollectParallel(context.Background(), tweets, CollectOptions{
			Workers: 2,
			Ticks:   ticks,
			OnTick:  func(total int) { ticked <- total },
		})
	}()
	ticks <- time.Now()
	select {
	case <-ticked:
	case <-time.After(5 * time.Second):
		t.Fatal("tick never observed")
	}
	close(tweets)
	if n := <-done; n != 0 {
		t.Errorf("folded %d tweets from an empty stream", n)
	}
}

// TestCollectParallelContextCancel: cancellation must end collection and
// still return a consistent dataset.
func TestCollectParallelContextCancel(t *testing.T) {
	tweets := make(chan twitter.Tweet)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := NewDataset()
	if n := d.CollectParallel(ctx, tweets, CollectOptions{Workers: 4}); n != 0 {
		t.Errorf("folded %d tweets under a cancelled context", n)
	}
}

// TestProcessAllWiresMetrics: the parallel path must feed the same
// instruments Process does — outcome counters, stage histograms, and the
// geocode memo hit/miss counters (it used to bypass all of them).
func TestProcessAllWiresMetrics(t *testing.T) {
	corpus := gen.Generate(gen.DefaultConfig(0.01))
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	d := NewDataset()
	d.SetMetrics(m)
	rej, nonUS, us := d.ProcessAll(corpus.Tweets, 4)

	if got := int(m.tweets.With(outcomeLabel(Rejected)).Value()); got != rej {
		t.Errorf("rejected counter %d, want %d", got, rej)
	}
	if got := int(m.tweets.With(outcomeLabel(CollectedNonUS)).Value()); got != nonUS {
		t.Errorf("non-US counter %d, want %d", got, nonUS)
	}
	if got := int(m.tweets.With(outcomeLabel(CollectedUS)).Value()); got != us {
		t.Errorf("US counter %d, want %d", got, us)
	}
	if got := int(m.stage.With(StageExtract).Count()); got != len(corpus.Tweets) {
		t.Errorf("extract stage observed %d tweets, want %d", got, len(corpus.Tweets))
	}
	if got := int(m.stage.With(StageLocate).Count()); got != nonUS+us {
		t.Errorf("locate stage observed %d tweets, want %d in-context", got, nonUS+us)
	}
	if hits, misses := m.cacheHits.Value(), m.cacheMisses.Value(); hits == 0 || misses == 0 {
		t.Errorf("cache counters hits=%v misses=%v, want both > 0", hits, misses)
	}
	if got := int(m.usTweets.Value()); got != us {
		t.Errorf("us_tweets gauge %d, want %d", got, us)
	}
}
