package pipeline

import (
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"donorsense/internal/obs/trace"
	"donorsense/internal/twitter"
)

// TestSupervisorTraceIncarnationAttribution kills a shard mid-run at
// 100% sampling and asserts the span ring ends up holding fold spans
// from both the original incarnation and its replacement, each tagged
// with the incarnation that actually ran it — the attribution a
// waterfall needs to explain work that straddles a restart.
func TestSupervisorTraceIncarnationAttribution(t *testing.T) {
	src := supervisorCorpus()[:3000]
	// Copy before stamping trace contexts: the corpus slice is shared
	// across supervisor tests.
	tweets := append([]twitter.Tweet(nil), src...)
	tracer := trace.New(trace.Config{SampleRate: 1, RingSize: 1 << 15})
	for i := range tweets {
		// Stand in for the stream client: one sampled root per tweet.
		root := tracer.StartRoot("stream.read")
		tweets[i].TraceCtx = root.Context()
		root.End()
	}

	var killed atomic.Bool
	got := runSupervisor(t, SupervisorConfig{
		Shards:           2,
		CheckpointBase:   filepath.Join(t.TempDir(), "state.ckpt"),
		CheckpointEveryN: 100,
		RestartBackoff:   time.Millisecond,
		Tracer:           tracer,
		ProcessHook: func(shard int, seq uint64, _ *twitter.Tweet) {
			if shard == 0 && seq == 500 && killed.CompareAndSwap(false, true) {
				panic("injected: kill shard 0")
			}
		},
	}, tweets)
	if !killed.Load() {
		t.Fatal("kill hook never fired")
	}
	// Tracing must not perturb the data: the merged result still matches
	// the untraced single-process reference exactly.
	assertDatasetsEqual(t, got, supervisorReference(src))

	incarnations := map[string]map[string]bool{} // shard -> incarnation set
	for _, sp := range tracer.Ring().Snapshot() {
		if sp.Name != "ingest.fold" {
			continue
		}
		var shard, inc string
		for _, a := range sp.Attrs() {
			switch a.Key {
			case "shard":
				shard = a.Value
			case "incarnation":
				inc = a.Value
			}
		}
		if shard == "" || inc == "" {
			t.Fatalf("fold span missing shard/incarnation attrs: %v", sp.Attrs())
		}
		if incarnations[shard] == nil {
			incarnations[shard] = map[string]bool{}
		}
		incarnations[shard][inc] = true
	}
	for _, want := range []string{"1", "2"} {
		if !incarnations["0"][want] {
			t.Errorf("shard 0 has no fold spans from incarnation %s (got %v)", want, incarnations["0"])
		}
	}
	if !incarnations["1"]["1"] {
		t.Errorf("shard 1 missing incarnation-1 fold spans (got %v)", incarnations["1"])
	}
}
