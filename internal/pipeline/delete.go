package pipeline

import (
	"donorsense/internal/organ"
)

// Twitter's terms require collectors to honor status-deletion notices:
// when a {"delete": ...} control message arrives, the tweet must be
// removed from downstream stores. With TrackDeletions enabled the
// dataset keeps a compact per-status record of each retained tweet's
// contribution so Delete can reverse it exactly.

// tweetContribution records what one retained US tweet added to the
// dataset, enough to subtract it again.
type tweetContribution struct {
	userID    int64
	mentions  [organ.Count]int8
	clinical  int8
	hashtags  int8
	distinct  int8
	geoTagged bool
}

// TrackDeletions switches on per-status contribution tracking. It must be
// called before processing begins; enabling it mid-stream would leave
// earlier tweets undeletable.
func (d *Dataset) TrackDeletions() {
	if d.contributions == nil {
		d.contributions = make(map[int64]tweetContribution)
	}
}

// DeletionTrackingEnabled reports whether TrackDeletions was called.
func (d *Dataset) DeletionTrackingEnabled() bool { return d.contributions != nil }

// Delete honors a status-deletion notice: if the status was retained, its
// contribution is reversed — counters, the user's mention vector, and the
// Figure 2(b) histogram. Users whose last tweet is deleted are removed
// entirely. It reports whether the status was known.
//
// The collection window (first/last timestamps) is not rewound: the
// paper's Table I window describes when collection ran, not which tweets
// survived.
func (d *Dataset) Delete(statusID int64) bool {
	c, ok := d.contributions[statusID]
	if !ok {
		return false
	}
	delete(d.contributions, statusID)

	d.usTweets--
	d.totalCollected--
	if c.geoTagged {
		d.geoTagged--
	}
	d.organsPerTweet[int(c.distinct)]--
	d.mentionSum -= int(c.distinct)

	row, ok := d.store.Find(c.userID)
	if !ok {
		return true // user already gone (should not happen)
	}
	d.store.AddCounts(row, -1, -int32(c.clinical), -int32(c.hashtags))
	mrow := d.store.MentionsRow(row)
	for i, m := range c.mentions {
		mrow[i] -= int32(m)
	}
	if d.store.Tweets(row) <= 0 {
		d.store.Remove(c.userID)
	}
	return true
}

// recordContribution stores the reversal record for a retained tweet.
func (d *Dataset) recordContribution(statusID int64, userID int64, mentions [organ.Count]int, clinical, hashtags, distinct int, geoTagged bool) {
	if d.contributions == nil {
		return
	}
	c := tweetContribution{
		userID:    userID,
		clinical:  clampInt8(clinical),
		hashtags:  clampInt8(hashtags),
		distinct:  int8(distinct),
		geoTagged: geoTagged,
	}
	for i, m := range mentions {
		c.mentions[i] = clampInt8(m)
	}
	d.contributions[statusID] = c
}

func clampInt8(v int) int8 {
	if v > 127 {
		return 127
	}
	return int8(v)
}
