package pipeline

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"donorsense/internal/obs"
	"donorsense/internal/twitter"
)

// supervisorCorpus is the slice of the shared corpus the supervisor
// tests run over; small enough that chaotic runs with frequent
// checkpoints stay fast.
func supervisorCorpus() []twitter.Tweet { return sharedCorpus.Tweets[:8000] }

// supervisorReference folds the same tweets in one process — the dataset
// every sharded run must reproduce exactly.
func supervisorReference(tweets []twitter.Tweet) *Dataset {
	d := NewDataset()
	for _, tw := range tweets {
		d.Process(tw)
	}
	return d
}

// runSupervisor runs one collection session to completion and returns
// the merged dataset.
func runSupervisor(t *testing.T, cfg SupervisorConfig, tweets []twitter.Tweet) *Dataset {
	t.Helper()
	s, err := NewSupervisor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background(), feed(tweets)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	d, err := s.Merged()
	if err != nil {
		t.Fatalf("Merged: %v", err)
	}
	return d
}

func TestSupervisorCleanShardedRunMatchesSequential(t *testing.T) {
	tweets := supervisorCorpus()
	want := supervisorReference(tweets)
	for _, shards := range []int{1, 3, 4} {
		got := runSupervisor(t, SupervisorConfig{
			Shards:           shards,
			CheckpointBase:   filepath.Join(t.TempDir(), "state.ckpt"),
			CheckpointEveryN: 500,
		}, tweets)
		assertDatasetsEqual(t, got, want)
		assertUsersEqual(t, got, want)
	}
}

func TestSupervisorNoDurabilityCleanRun(t *testing.T) {
	tweets := supervisorCorpus()
	want := supervisorReference(tweets)
	got := runSupervisor(t, SupervisorConfig{Shards: 4}, tweets)
	assertDatasetsEqual(t, got, want)
	assertUsersEqual(t, got, want)
}

// chaosSaveHook injects deterministic checkpoint-save faults, counted
// per shard: every 5th-ish save dies before the write (nothing
// published, replay from the old snapshot) and every 7th-ish dies after
// the atomic rename but before the acknowledgement — the
// kill-during-checkpoint-save window, where the snapshot is durable but
// the supervisor does not know it.
func chaosSaveHook() func(shard int, save func() error) error {
	var mu sync.Mutex
	counts := map[int]int{}
	return func(shard int, save func() error) error {
		mu.Lock()
		counts[shard]++
		n := counts[shard]
		mu.Unlock()
		switch {
		case n%5 == 3:
			return errors.New("injected: crash before checkpoint write")
		case n%7 == 5:
			if err := save(); err != nil {
				return err
			}
			return errors.New("injected: crash after rename, before ack")
		default:
			return save()
		}
	}
}

// TestSupervisorChaosMatchesSequential is the multi-shard chaos test:
// shards crash mid-fold (injected panics), crash before and after the
// checkpoint rename, and are killed externally mid-run — and the merged
// result must still be exactly the single-process dataset. Exactly-once
// under every crash schedule.
func TestSupervisorChaosMatchesSequential(t *testing.T) {
	tweets := supervisorCorpus()
	want := supervisorReference(tweets)
	const shards = 4

	var panicsFired sync.Map // shard<<32|seq → fired once
	cfg := SupervisorConfig{
		Shards:            shards,
		CheckpointBase:    filepath.Join(t.TempDir(), "state.ckpt"),
		CheckpointEveryN:  97,
		RestartBackoff:    time.Millisecond,
		MaxRestartBackoff: 20 * time.Millisecond,
		SaveHook:          chaosSaveHook(),
		ProcessHook: func(shard int, seq uint64, _ *twitter.Tweet) {
			// Crash each shard mid-fold at a few fixed stream positions,
			// once per position (replay re-reaches them).
			for _, at := range []uint64{41, 500, 1203} {
				if seq == at {
					if _, fired := panicsFired.LoadOrStore(uint64(shard)<<32|at, true); !fired {
						panic("injected: crash while folding")
					}
				}
			}
		},
	}
	s, err := NewSupervisor(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// External kills layered on top, while the stream is in flight.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 12; i++ {
			time.Sleep(5 * time.Millisecond)
			s.Kill(i % shards)
		}
	}()
	if err := s.Run(context.Background(), feed(tweets)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	<-done

	got, err := s.Merged()
	if err != nil {
		t.Fatalf("Merged: %v", err)
	}
	assertDatasetsEqual(t, got, want)
	assertUsersEqual(t, got, want)

	restarts := 0
	for _, st := range s.Status() {
		if !st.Done {
			t.Errorf("shard %d not done after Run", st.Shard)
		}
		restarts += st.Restarts
	}
	if restarts == 0 {
		t.Error("chaos run recorded zero restarts — the faults did not fire")
	}
}

// TestSupervisorStallDetection wedges one shard inside a fold; the
// heartbeat monitor must abandon it, restart the shard, and the run must
// still complete with the exact sequential result.
func TestSupervisorStallDetection(t *testing.T) {
	tweets := supervisorCorpus()[:3000]
	want := supervisorReference(tweets)

	block := make(chan struct{})
	defer close(block) // release the wedged goroutine at test end
	var fired atomic.Bool
	s, err := NewSupervisor(SupervisorConfig{
		Shards:           3,
		CheckpointBase:   filepath.Join(t.TempDir(), "state.ckpt"),
		CheckpointEveryN: 200,
		HeartbeatTimeout: 50 * time.Millisecond,
		RestartBackoff:   time.Millisecond,
		ProcessHook: func(shard int, seq uint64, _ *twitter.Tweet) {
			if shard == 0 && seq == 25 && fired.CompareAndSwap(false, true) {
				<-block
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background(), feed(tweets)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	got, err := s.Merged()
	if err != nil {
		t.Fatalf("Merged: %v", err)
	}
	assertDatasetsEqual(t, got, want)
	assertUsersEqual(t, got, want)
	if st := s.Status()[0]; st.Stalls == 0 {
		t.Error("stalled shard was never flagged by the monitor")
	}
}

// TestSupervisorBackpressureTinyBuffer: with a replay buffer of 2 the
// router must block rather than drop, and the run still completes
// exactly.
func TestSupervisorBackpressureTinyBuffer(t *testing.T) {
	tweets := supervisorCorpus()[:2000]
	want := supervisorReference(tweets)
	got := runSupervisor(t, SupervisorConfig{
		Shards:           3,
		CheckpointBase:   filepath.Join(t.TempDir(), "state.ckpt"),
		CheckpointEveryN: 1,
		BufferCap:        2,
		RestartBackoff:   time.Millisecond,
	}, tweets)
	assertDatasetsEqual(t, got, want)
	assertUsersEqual(t, got, want)
}

// TestSupervisorResumeAcrossSessions: a second supervisor over the same
// checkpoint base must resume the shard cursors, skip the half the first
// session durably folded, and finish the stream — under chaos — with the
// exact full-stream result.
func TestSupervisorResumeAcrossSessions(t *testing.T) {
	tweets := supervisorCorpus()
	want := supervisorReference(tweets)
	base := filepath.Join(t.TempDir(), "state.ckpt")
	half := len(tweets) / 2

	_ = runSupervisor(t, SupervisorConfig{
		Shards:           4,
		CheckpointBase:   base,
		CheckpointEveryN: 300,
	}, tweets[:half])

	s, err := NewSupervisor(SupervisorConfig{
		Shards:           4,
		CheckpointBase:   base,
		CheckpointEveryN: 150,
		RestartBackoff:   time.Millisecond,
		SaveHook:         chaosSaveHook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background(), feed(tweets[half:])); err != nil {
		t.Fatalf("Run: %v", err)
	}
	got, err := s.Merged()
	if err != nil {
		t.Fatalf("Merged: %v", err)
	}
	assertDatasetsEqual(t, got, want)
	assertUsersEqual(t, got, want)
}

func TestSupervisorAPIBounds(t *testing.T) {
	if _, err := NewSupervisor(SupervisorConfig{Shards: 0}); err == nil {
		t.Error("NewSupervisor with 0 shards must error")
	}
	s, err := NewSupervisor(SupervisorConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Merged(); err == nil {
		t.Error("Merged before Run must error")
	}
	if s.Kill(-1) || s.Kill(2) {
		t.Error("Kill out of range must report false")
	}
	if s.Kill(0) {
		t.Error("Kill with no live incarnation must report false")
	}
	if err := s.Run(context.Background(), feed(nil)); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background(), feed(nil)); err == nil {
		t.Error("second Run must error")
	}
}

// TestSupervisorMetrics: a chaotic run must surface restarts, routed
// tweets, and merge counts through the obs registry.
func TestSupervisorMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewShardMetrics(reg)
	tweets := supervisorCorpus()[:3000]
	s, err := NewSupervisor(SupervisorConfig{
		Shards:           2,
		CheckpointBase:   filepath.Join(t.TempDir(), "state.ckpt"),
		CheckpointEveryN: 100,
		RestartBackoff:   time.Millisecond,
		Metrics:          m,
		SaveHook:         chaosSaveHook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background(), feed(tweets)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Merged(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`donorsense_shard_restarts_total{shard="0"}`,
		`donorsense_shard_routed_tweets_total{shard="1"}`,
		"donorsense_shard_buffer_depth",
		"donorsense_shard_heartbeat_age_seconds",
		"donorsense_merges_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
