// Synthetic dataset fabrication for benchmarks and large-scale tests.
// Building a million-user dataset through Process would mean parsing
// tens of millions of synthetic tweets; SynthDataset writes the columnar
// store and the Table I counters directly, producing in milliseconds a
// dataset indistinguishable (to the analysis layer) from a months-long
// collection.
package pipeline

import (
	"math/rand"
	"time"

	"donorsense/internal/geo"
	"donorsense/internal/organ"
	"donorsense/internal/userstore"
)

// SynthDataset fabricates a dataset of n users with a plausible shape:
// snowflake-scattered ids, states drawn across the USPS universe, 1–5
// tweets per user, and a skewed organ-mention profile (most users
// mention one organ; a tail mentions several). Deterministic in seed.
func SynthDataset(n int, seed uint64) *Dataset {
	d := NewDataset()
	rng := rand.New(rand.NewSource(int64(seed)))
	codes := geo.StateCodes()
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	d.firstTweet = start
	d.lastTweet = start.Add(90 * 24 * time.Hour)
	for i := 0; i < n; i++ {
		id := int64(rng.Uint64() >> 1)
		code := codes[rng.Intn(len(codes))]
		var flags uint8
		if rng.Intn(70) == 0 { // ≈1.4% geo-tagged, the paper's rate
			flags = userstore.FlagGeoTagged
		}
		row := d.store.Insert(id, code, flags,
			start.Add(time.Duration(rng.Intn(90*24))*time.Hour).UnixNano(), int64(i))
		tweets := 1 + rng.Intn(5)
		d.store.AddCounts(row, int32(tweets), int32(rng.Intn(2)), int32(rng.Intn(3)))
		mrow := d.store.MentionsRow(row)
		organs := 1
		for organs < organ.Count && rng.Intn(8) == 0 {
			organs++ // geometric tail of multi-organ users
		}
		for j := 0; j < organs; j++ {
			mrow[rng.Intn(organ.Count)]++
		}
		distinct := 0
		for _, m := range mrow {
			if m > 0 {
				distinct++
			}
		}
		d.usTweets += tweets
		d.totalCollected += tweets
		if flags&userstore.FlagGeoTagged != 0 {
			d.geoTagged++
		}
		// Attribute the user's distinct organs to their first tweet and
		// count the rest as single-organ, keeping the per-tweet histogram
		// consistent with the per-user mention rows.
		d.organsPerTweet[distinct]++
		d.mentionSum += distinct
		if tweets > 1 {
			d.organsPerTweet[1] += tweets - 1
			d.mentionSum += tweets - 1
		}
	}
	// A synthetic corpus of non-US chatter around the retained tweets.
	d.totalCollected += d.totalCollected * 6
	return d
}
