package pipeline

import (
	"context"
	"runtime"
	"sync"
	"time"

	"donorsense/internal/geo"
	"donorsense/internal/text"
	"donorsense/internal/twitter"
)

// The expensive stages of Process — tokenizing/extracting the text and
// geocoding the location — are pure, so they parallelize cleanly. The
// fold into Dataset state stays single-threaded. Work travels in
// fixed-size, sequence-numbered chunks: workers pull chunks from a
// channel and fill pooled result buffers, and one folder consumes
// finished chunks in input order. Because folding happens in input
// order, the resulting dataset state is bit-identical to processing the
// tweets sequentially, while memory stays O(workers · chunk) instead of
// O(corpus) — the streaming CollectParallel path relies on both.

// ingestChunkSize is how many tweets one worker prepares per chunk: big
// enough to amortize channel handoffs, small enough that a handful of
// in-flight chunks fit comfortably in cache.
const ingestChunkSize = 256

// prepared carries the precomputed expensive parts of one tweet.
type prepared struct {
	ex        text.Extraction
	loc       geo.Location
	viaGeoTag bool
	// dExtract/dLocate are worker-side stage timings, recorded only when
	// metrics are attached (zero otherwise).
	dExtract time.Duration
	dLocate  time.Duration
}

// ingestChunk is one unit of parallel work: a window of the input and a
// recycled buffer of prepared results, tagged with a sequence number so
// the folder can restore input order.
type ingestChunk struct {
	seq    int
	tweets []twitter.Tweet
	preps  []prepared
}

// startIngestWorkers launches the extract/geocode workers: each reads
// chunks from in, fills their prepared buffers, and delivers them to
// out. The returned WaitGroup completes once in is closed and drained.
func (d *Dataset) startIngestWorkers(workers int, in, out chan ingestChunk) *sync.WaitGroup {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The extractor is per-worker scratch; the geocoder, sharded
			// cache, and metric counters are shared and concurrency-safe.
			ex := text.NewExtractor()
			for c := range in {
				d.prepareChunk(ex, &c)
				out <- c
			}
		}()
	}
	return &wg
}

// prepareChunk runs the pure stages over one chunk. Location work is
// skipped for out-of-context tweets, exactly as in Process.
func (d *Dataset) prepareChunk(ex *text.Extractor, c *ingestChunk) {
	m := d.metrics
	c.preps = c.preps[:0]
	for _, t := range c.tweets {
		var p prepared
		if m == nil {
			sp := d.startSpan("ingest.extract", t.TraceCtx)
			p.ex = ex.Extract(t.Text)
			sp.End()
			if p.ex.InContext() {
				sp = d.startSpan("ingest.locate", t.TraceCtx)
				p.loc, p.viaGeoTag = d.locate(t)
				if sp != nil {
					sp.SetAttr("resolved", p.loc.String())
					sp.End()
				}
			}
		} else {
			sp := d.startSpan("ingest.extract", t.TraceCtx)
			t0 := time.Now()
			p.ex = ex.Extract(t.Text)
			p.dExtract = time.Since(t0)
			sp.End()
			if p.ex.InContext() {
				sp = d.startSpan("ingest.locate", t.TraceCtx)
				t0 = time.Now()
				p.loc, p.viaGeoTag = d.locate(t)
				p.dLocate = time.Since(t0)
				if sp != nil {
					sp.SetAttr("resolved", p.loc.String())
					sp.End()
				}
			}
		}
		c.preps = append(c.preps, p)
	}
}

// fold applies a prepared tweet to the dataset state; it mirrors Process
// exactly but skips the recomputation of extraction and location.
func (d *Dataset) fold(t twitter.Tweet, p prepared) Outcome {
	if !p.ex.InContext() {
		return Rejected
	}
	fsp := d.startSpan("ingest.fold", t.TraceCtx)
	d.totalCollected++
	if !p.loc.IsUSState() {
		d.endFold(fsp, t.TraceCtx, CollectedNonUS)
		return CollectedNonUS
	}
	d.usTweets++
	if p.viaGeoTag {
		d.geoTagged++
	}
	if d.firstTweet.IsZero() || t.CreatedAt.Before(d.firstTweet) {
		d.firstTweet = t.CreatedAt
	}
	if t.CreatedAt.After(d.lastTweet) {
		d.lastTweet = t.CreatedAt
	}
	d.foldUSTweet(t, p.ex, p.loc.StateCode, p.viaGeoTag)
	d.endFold(fsp, t.TraceCtx, CollectedUS)
	return CollectedUS
}

// foldChunk folds one prepared chunk into the dataset in input order,
// feeding the per-tweet instruments and refreshing the size gauges once
// per chunk.
func (d *Dataset) foldChunk(c ingestChunk) (rejected, nonUS, us int) {
	m := d.metrics
	for i, t := range c.tweets {
		o := d.fold(t, c.preps[i])
		switch o {
		case Rejected:
			rejected++
		case CollectedNonUS:
			nonUS++
		case CollectedUS:
			us++
		}
		if m != nil {
			m.observeFold(o, c.preps[i], t.HasCoordinates, t.TraceCtx)
		}
	}
	if m != nil {
		m.updateSizes(d)
	}
	return rejected, nonUS, us
}

// ProcessAll runs the corpus through the dataset using the given number
// of workers for extraction and geocoding (0 means GOMAXPROCS). It
// returns the per-outcome counts. The dataset must not be used
// concurrently with this call. The resulting dataset state is identical
// to calling Process on every tweet in order.
func (d *Dataset) ProcessAll(tweets []twitter.Tweet, workers int) (rejected, nonUS, us int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(tweets) < 2*ingestChunkSize {
		for _, t := range tweets {
			switch d.Process(t) {
			case Rejected:
				rejected++
			case CollectedNonUS:
				nonUS++
			case CollectedUS:
				us++
			}
		}
		return rejected, nonUS, us
	}

	// A fixed pool of prepared buffers caps in-flight chunks (and thus
	// memory) at inflight · ingestChunkSize regardless of corpus size:
	// the feeder blocks on free until the folder recycles a buffer. out
	// holds one slot per buffer so workers never block delivering.
	inflight := workers + 2
	in := make(chan ingestChunk, workers)
	out := make(chan ingestChunk, inflight)
	free := make(chan []prepared, inflight)
	for i := 0; i < inflight; i++ {
		free <- make([]prepared, 0, ingestChunkSize)
	}

	wg := d.startIngestWorkers(workers, in, out)
	go func() {
		seq := 0
		for lo := 0; lo < len(tweets); lo += ingestChunkSize {
			hi := min(lo+ingestChunkSize, len(tweets))
			in <- ingestChunk{seq: seq, tweets: tweets[lo:hi], preps: <-free}
			seq++
		}
		close(in)
	}()
	go func() { wg.Wait(); close(out) }()

	// Fold strictly in sequence order; chunks that finish early wait in
	// pending (bounded by the buffer pool).
	pending := make(map[int]ingestChunk, inflight)
	next := 0
	for c := range out {
		pending[c.seq] = c
		for {
			cc, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			r, nu, u := d.foldChunk(cc)
			rejected += r
			nonUS += nu
			us += u
			free <- cc.preps
		}
	}
	return rejected, nonUS, us
}

// CollectOptions configures CollectParallel.
type CollectOptions struct {
	// Workers is the number of extract/geocode workers (0 = GOMAXPROCS;
	// 1 = a sequential per-tweet path identical to Collect).
	Workers int
	// OnFold, when set, runs after each folded chunk with the cumulative
	// folded-tweet count; returning false stops collection early. The
	// stop lands on a chunk boundary, so somewhat more tweets than the
	// caller's threshold may already be folded when it fires.
	OnFold func(total int) bool
	// Ticks, when set, is observed between chunks; each tick invokes
	// OnTick with the cumulative count. OnFold and OnTick both run on
	// the calling goroutine, so reading the dataset from them is safe.
	Ticks  <-chan time.Time
	OnTick func(total int)
}

// CollectParallel drains tweets from the channel like Collect but runs
// extraction and geocoding on opts.Workers workers, batching arrivals
// into chunks. Chunks are folded in arrival order, so the dataset ends
// bit-identical to Collect consuming the same delivery sequence. A
// partial chunk is flushed whenever the stream has no tweet immediately
// ready, so a slow stream never strands tweets in the batch buffer. It
// returns the number of tweets folded into the dataset.
func (d *Dataset) CollectParallel(ctx context.Context, tweets <-chan twitter.Tweet, opts CollectOptions) int {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		n := 0
		for {
			select {
			case <-ctx.Done():
				return n
			case t, ok := <-tweets:
				if !ok {
					return n
				}
				d.Process(t)
				n++
				if opts.OnFold != nil && !opts.OnFold(n) {
					return n
				}
			case <-opts.Ticks:
				if opts.OnTick != nil {
					opts.OnTick(n)
				}
			}
		}
	}

	inflight := workers + 2
	in := make(chan ingestChunk, workers)
	out := make(chan ingestChunk, inflight)
	free := make(chan ingestChunk, inflight)
	for i := 0; i < inflight; i++ {
		free <- ingestChunk{
			tweets: make([]twitter.Tweet, 0, ingestChunkSize),
			preps:  make([]prepared, 0, ingestChunkSize),
		}
	}
	wg := d.startIngestWorkers(workers, in, out)

	var (
		pending = make(map[int]ingestChunk, inflight)
		seq     int
		next    int
		total   int
		stopped bool
	)
	// foldReady folds every consecutively-sequenced chunk available,
	// recycling buffers; once stopped, finished chunks just accumulate
	// in pending (bounded by the buffer pool) and are discarded later.
	foldReady := func(c ingestChunk) {
		pending[c.seq] = c
		for !stopped {
			cc, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			d.foldChunk(cc)
			total += len(cc.tweets)
			cc.tweets = cc.tweets[:0]
			free <- cc
			if opts.OnFold != nil && !opts.OnFold(total) {
				stopped = true
			}
		}
	}
	cur := <-free
	// dispatch hands the current batch to the workers and acquires the
	// next buffer. Both waits service out in the meantime: the folder is
	// this same goroutine, so draining here is what keeps the workers
	// moving (and prevents deadlock) when every buffer is in flight.
	dispatch := func() {
		if len(cur.tweets) == 0 {
			return
		}
		cur.seq = seq
		seq++
		for c, sent := cur, false; !sent; {
			select {
			case in <- c:
				sent = true
			case done := <-out:
				foldReady(done)
			}
		}
		for {
			select {
			case cur = <-free:
				return
			case done := <-out:
				foldReady(done)
			}
		}
	}

loop:
	for !stopped {
		if len(cur.tweets) == 0 {
			select {
			case <-ctx.Done():
				break loop
			case t, ok := <-tweets:
				if !ok {
					break loop
				}
				cur.tweets = append(cur.tweets, t)
				if len(cur.tweets) == ingestChunkSize {
					dispatch()
				}
			case done := <-out:
				foldReady(done)
			case <-opts.Ticks:
				if opts.OnTick != nil {
					opts.OnTick(total)
				}
			}
		} else {
			// A partial batch is in hand: take more input only when it
			// is immediately available, otherwise flush it.
			select {
			case <-ctx.Done():
				break loop
			case t, ok := <-tweets:
				if !ok {
					break loop
				}
				cur.tweets = append(cur.tweets, t)
				if len(cur.tweets) == ingestChunkSize {
					dispatch()
				}
			case done := <-out:
				foldReady(done)
			case <-opts.Ticks:
				if opts.OnTick != nil {
					opts.OnTick(total)
				}
			default:
				dispatch()
			}
		}
	}
	// Flush the tail batch, then drain the workers, folding whatever is
	// still in flight (unless a stop discarded the suffix).
	if !stopped {
		dispatch()
	}
	close(in)
	go func() { wg.Wait(); close(out) }()
	for c := range out {
		foldReady(c)
	}
	return total
}
