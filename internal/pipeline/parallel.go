package pipeline

import (
	"runtime"
	"sync"

	"donorsense/internal/geo"
	"donorsense/internal/text"
	"donorsense/internal/twitter"
)

// The expensive stages of Process — tokenizing/extracting the text and
// geocoding the location — are pure, so they parallelize cleanly. The
// fold into Dataset state stays single-threaded. ProcessAll shards the
// expensive work across workers and preserves the exact semantics (and,
// because folding happens in input order, the exact resulting state) of
// calling Process sequentially.

// prepared carries the precomputed expensive parts of one tweet.
type prepared struct {
	ex        text.Extraction
	loc       geo.Location
	viaGeoTag bool
}

// ProcessAll runs the corpus through the dataset using the given number
// of workers for extraction and geocoding (0 means GOMAXPROCS). It
// returns the per-outcome counts. The dataset must not be used
// concurrently with this call.
func (d *Dataset) ProcessAll(tweets []twitter.Tweet, workers int) (rejected, nonUS, us int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(tweets) < 256 {
		for _, t := range tweets {
			switch d.Process(t) {
			case Rejected:
				rejected++
			case CollectedNonUS:
				nonUS++
			case CollectedUS:
				us++
			}
		}
		return rejected, nonUS, us
	}

	preps := make([]prepared, len(tweets))
	var wg sync.WaitGroup
	chunk := (len(tweets) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(tweets) {
			break
		}
		hi := lo + chunk
		if hi > len(tweets) {
			hi = len(tweets)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			// Per-worker extractor and geocode cache: no shared mutable
			// state on the hot path.
			ex := text.NewExtractor()
			gc := geo.NewGeocoder()
			cache := make(map[string]geo.Location)
			for i := lo; i < hi; i++ {
				t := tweets[i]
				p := prepared{ex: ex.Extract(t.Text)}
				if t.Coordinates != nil {
					if l, ok := gc.Reverse(t.Coordinates.Lat, t.Coordinates.Lon); ok {
						p.loc, p.viaGeoTag = l, true
					}
				} else {
					l, ok := cache[t.User.Location]
					if !ok {
						l = gc.Locate(t.User.Location)
						cache[t.User.Location] = l
					}
					p.loc = l
				}
				preps[i] = p
			}
		}(lo, hi)
	}
	wg.Wait()

	// Serial fold, in input order.
	for i, t := range tweets {
		switch d.fold(t, preps[i]) {
		case Rejected:
			rejected++
		case CollectedNonUS:
			nonUS++
		case CollectedUS:
			us++
		}
	}
	return rejected, nonUS, us
}

// fold applies a prepared tweet to the dataset state; it mirrors Process
// exactly but skips the recomputation of extraction and location.
func (d *Dataset) fold(t twitter.Tweet, p prepared) Outcome {
	if !p.ex.InContext() {
		return Rejected
	}
	d.totalCollected++
	if !p.loc.IsUSState() {
		return CollectedNonUS
	}
	d.usTweets++
	if p.viaGeoTag {
		d.geoTagged++
	}
	if d.firstTweet.IsZero() || t.CreatedAt.Before(d.firstTweet) {
		d.firstTweet = t.CreatedAt
	}
	if t.CreatedAt.After(d.lastTweet) {
		d.lastTweet = t.CreatedAt
	}
	u := d.users[t.User.ID]
	if u == nil {
		u = &UserRecord{ID: t.User.ID, StateCode: p.loc.StateCode, GeoTagged: p.viaGeoTag}
		d.users[t.User.ID] = u
	}
	u.Tweets++
	u.ClinicalMentions += p.ex.ClinicalMentions
	u.Hashtags += p.ex.Hashtags
	distinct := 0
	for i, m := range p.ex.Mentions {
		u.Mentions[i] += m
		if m > 0 {
			distinct++
		}
	}
	d.organsPerTweet[distinct]++
	d.mentionSum += distinct
	d.recordContribution(t.ID, t.User.ID, p.ex.Mentions, p.ex.ClinicalMentions, p.ex.Hashtags, distinct, p.viaGeoTag)
	if d.OnUSTweet != nil {
		d.OnUSTweet(t, p.ex)
	}
	return CollectedUS
}
