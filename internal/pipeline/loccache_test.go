package pipeline

import (
	"fmt"
	"sync"
	"testing"

	"donorsense/internal/geo"
	"donorsense/internal/twitter"
)

func TestLocCacheBounded(t *testing.T) {
	c := newLocCache(8)
	for i := 0; i < 1000; i++ {
		c.put(fmt.Sprintf("city-%d", i), geo.Location{Country: "US"})
	}
	if c.len() > 16 {
		t.Errorf("cache holds %d entries, cap is 2×8", c.len())
	}
}

func TestLocCacheKeepsHotEntries(t *testing.T) {
	c := newLocCache(8)
	hot := geo.Location{Country: "US", StateCode: "KS"}
	c.put("hot", hot)
	for i := 0; i < 100; i++ {
		// Touch the hot key between waves of cold inserts; promotion on
		// hit must keep it resident across generation rotations.
		if got, ok := c.get("hot"); !ok || got != hot {
			t.Fatalf("hot entry evicted after %d cold inserts", i*4)
		}
		for j := 0; j < 4; j++ {
			c.put(fmt.Sprintf("cold-%d-%d", i, j), geo.Location{})
		}
	}
}

func TestLocCacheEachDeduplicates(t *testing.T) {
	c := newLocCache(2)
	c.put("a", geo.Location{City: "a1"})
	c.put("b", geo.Location{})
	c.put("c", geo.Location{}) // rotates: {a,b} become prev
	c.put("a", geo.Location{City: "a2"})
	seen := map[string]geo.Location{}
	c.each(func(k string, v geo.Location) {
		if _, dup := seen[k]; dup {
			t.Errorf("key %q visited twice", k)
		}
		seen[k] = v
	})
	if seen["a"].City != "a2" {
		t.Errorf("each returned stale value %+v for promoted key", seen["a"])
	}
}

func TestDatasetLocCacheStaysBounded(t *testing.T) {
	// An adversarial stream of never-repeating profile locations must not
	// grow the memo without limit (the 385-day memory-exhaustion hazard).
	d := NewDataset()
	tw := twitter.Tweet{Text: "please donate a kidney, be an organ donor"}
	for i := 0; i < 1000; i++ {
		tw.ID = int64(i)
		tw.User = twitter.User{ID: int64(i), Location: fmt.Sprintf("nowhere-%d", i)}
		d.Process(tw)
	}
	if n := d.locCache.len(); n > 2*locCacheCap {
		t.Errorf("dataset locCache grew to %d entries", n)
	}
}

// TestLocCachePutExistingKeyNoRotation: overwriting a key that is already
// in the full current generation must not rotate — the map does not grow,
// and a needless rotation would age out a whole generation of hot
// entries. Regression test for the rotate-on-overwrite bug.
func TestLocCachePutExistingKeyNoRotation(t *testing.T) {
	c := newLocCache(4)
	rotations := 0
	c.onRotate = func() { rotations++ }
	for i := 0; i < 4; i++ {
		c.put(fmt.Sprintf("k-%d", i), geo.Location{})
	}
	if rotations != 0 {
		t.Fatalf("filling to cap rotated %d times", rotations)
	}
	for i := 0; i < 10; i++ {
		c.put("k-0", geo.Location{Country: "US"})
	}
	if rotations != 0 {
		t.Errorf("overwriting an existing key rotated %d times", rotations)
	}
	if c.len() != 4 {
		t.Errorf("cache holds %d entries, want 4", c.len())
	}
	for i := 0; i < 4; i++ {
		if _, ok := c.get(fmt.Sprintf("k-%d", i)); !ok {
			t.Errorf("entry k-%d lost without any rotation", i)
		}
	}
	// A genuinely new key must still rotate.
	c.put("k-new", geo.Location{})
	if rotations != 1 {
		t.Errorf("new key past cap rotated %d times, want 1", rotations)
	}
}

func TestShardedLocCacheBasics(t *testing.T) {
	s := newShardedLocCache(locCacheShards * 4)
	want := geo.Location{Country: "US", StateCode: "KS", Accuracy: geo.AccuracyState}
	s.put("wichita ks", want)
	if got, ok := s.get("wichita ks"); !ok || got != want {
		t.Fatalf("get = %+v, %v", got, ok)
	}
	if _, ok := s.get("missing"); ok {
		t.Fatal("phantom hit")
	}
	if n := s.len(); n != 1 {
		t.Errorf("len = %d, want 1", n)
	}
	seen := 0
	s.each(func(k string, v geo.Location) {
		seen++
		if k != "wichita ks" || v != want {
			t.Errorf("each visited %q %+v", k, v)
		}
	})
	if seen != 1 {
		t.Errorf("each visited %d entries", seen)
	}
}

// TestShardedLocCacheBounded: the shard ensemble must respect the global
// bound no matter how skewed the key stream is.
func TestShardedLocCacheBounded(t *testing.T) {
	capacity := locCacheShards * 8
	s := newShardedLocCache(capacity)
	for i := 0; i < capacity*20; i++ {
		s.put(fmt.Sprintf("city-%d", i), geo.Location{})
	}
	if n := s.len(); n > 2*capacity {
		t.Errorf("sharded cache holds %d entries, bound is %d", n, 2*capacity)
	}
}

// TestShardedLocCacheConcurrent hammers one cache from many goroutines;
// run under -race this is the data-race check for the shared memo.
func TestShardedLocCacheConcurrent(t *testing.T) {
	s := newShardedLocCache(256)
	rotations := 0
	var mu sync.Mutex
	s.setOnRotate(func() { mu.Lock(); rotations++; mu.Unlock() })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("loc-%d", i%512)
				if _, ok := s.get(k); !ok {
					s.put(k, geo.Location{Country: "US"})
				}
			}
		}(g)
	}
	wg.Wait()
	if n := s.len(); n == 0 {
		t.Error("cache empty after concurrent fill")
	}
}
