package pipeline

import (
	"fmt"
	"testing"

	"donorsense/internal/geo"
	"donorsense/internal/twitter"
)

func TestLocCacheBounded(t *testing.T) {
	c := newLocCache(8)
	for i := 0; i < 1000; i++ {
		c.put(fmt.Sprintf("city-%d", i), geo.Location{Country: "US"})
	}
	if c.len() > 16 {
		t.Errorf("cache holds %d entries, cap is 2×8", c.len())
	}
}

func TestLocCacheKeepsHotEntries(t *testing.T) {
	c := newLocCache(8)
	hot := geo.Location{Country: "US", StateCode: "KS"}
	c.put("hot", hot)
	for i := 0; i < 100; i++ {
		// Touch the hot key between waves of cold inserts; promotion on
		// hit must keep it resident across generation rotations.
		if got, ok := c.get("hot"); !ok || got != hot {
			t.Fatalf("hot entry evicted after %d cold inserts", i*4)
		}
		for j := 0; j < 4; j++ {
			c.put(fmt.Sprintf("cold-%d-%d", i, j), geo.Location{})
		}
	}
}

func TestLocCacheEachDeduplicates(t *testing.T) {
	c := newLocCache(2)
	c.put("a", geo.Location{City: "a1"})
	c.put("b", geo.Location{})
	c.put("c", geo.Location{}) // rotates: {a,b} become prev
	c.put("a", geo.Location{City: "a2"})
	seen := map[string]geo.Location{}
	c.each(func(k string, v geo.Location) {
		if _, dup := seen[k]; dup {
			t.Errorf("key %q visited twice", k)
		}
		seen[k] = v
	})
	if seen["a"].City != "a2" {
		t.Errorf("each returned stale value %+v for promoted key", seen["a"])
	}
}

func TestDatasetLocCacheStaysBounded(t *testing.T) {
	// An adversarial stream of never-repeating profile locations must not
	// grow the memo without limit (the 385-day memory-exhaustion hazard).
	d := NewDataset()
	tw := twitter.Tweet{Text: "please donate a kidney, be an organ donor"}
	for i := 0; i < 1000; i++ {
		tw.ID = int64(i)
		tw.User = twitter.User{ID: int64(i), Location: fmt.Sprintf("nowhere-%d", i)}
		d.Process(tw)
	}
	if n := d.locCache.len(); n > 2*locCacheCap {
		t.Errorf("dataset locCache grew to %d entries", n)
	}
}
