package pipeline

import (
	"sort"
	"time"

	"donorsense/internal/organ"
	"donorsense/internal/stats"
)

// TableI is the dataset-statistics summary of the paper's Table I.
type TableI struct {
	Start, End       time.Time
	Days             int
	TweetsCollected  int     // US tweets retained (the paper's 134,986)
	TotalCollected   int     // all in-context tweets (the paper's 975,021)
	Users            int     // US users (the paper's 71,947)
	AvgTweetsPerDay  float64 // ≈350
	AvgTweetsPerUser float64 // ≈1.88
	OrgansPerTweet   float64 // ≈1.03
	OrgansPerUser    float64 // ≈1.13
	GeoTagRate       float64 // fraction of retained tweets located by GPS (≈0.014)
}

// Stats summarizes the dataset in Table I form. Day count is derived from
// the observed tweet span (inclusive of both end days).
func (d *Dataset) Stats() TableI {
	t := d.statsBase()
	if t.Users > 0 {
		total := 0
		ments := d.store.Mentions()
		for r := 0; r < t.Users; r++ {
			for _, m := range ments[r*organ.Count : (r+1)*organ.Count] {
				if m > 0 {
					total++
				}
			}
		}
		t.OrgansPerUser = float64(total) / float64(t.Users)
	}
	return t
}

// StatsFromDistinct is Stats with the distinct (user, organ) pair total
// supplied by the caller — the incremental engine maintains it in a
// mergeable accumulator, so Table I no longer needs the O(users) mention
// scan. Identical output to Stats when the supplied total matches the
// store.
func (d *Dataset) StatsFromDistinct(distinctTotal int) TableI {
	t := d.statsBase()
	if t.Users > 0 {
		t.OrgansPerUser = float64(distinctTotal) / float64(t.Users)
	}
	return t
}

// statsBase computes every Table I field except OrgansPerUser (the only
// one needing a user scan or an accumulator).
func (d *Dataset) statsBase() TableI {
	t := TableI{
		Start:           d.firstTweet,
		End:             d.lastTweet,
		TweetsCollected: d.usTweets,
		TotalCollected:  d.totalCollected,
		Users:           d.store.Len(),
	}
	if !d.firstTweet.IsZero() {
		t.Days = int(d.lastTweet.Sub(d.firstTweet).Hours()/24) + 1
	}
	if t.Days > 0 {
		t.AvgTweetsPerDay = float64(d.usTweets) / float64(t.Days)
	}
	if t.Users > 0 {
		t.AvgTweetsPerUser = float64(d.usTweets) / float64(t.Users)
	}
	if d.usTweets > 0 {
		t.OrgansPerTweet = float64(d.mentionSum) / float64(d.usTweets)
		t.GeoTagRate = float64(d.geoTagged) / float64(d.usTweets)
	}
	return t
}

// UsersPerOrgan counts the distinct users mentioning each organ —
// Figure 2(a), the organ "popularity" histogram. One linear sweep of the
// row-major mention matrix.
func (d *Dataset) UsersPerOrgan() [organ.Count]int {
	var out [organ.Count]int
	ments := d.store.Mentions()
	for r := 0; r < d.store.Len(); r++ {
		for i, m := range ments[r*organ.Count : (r+1)*organ.Count] {
			if m > 0 {
				out[i]++
			}
		}
	}
	return out
}

// MultiOrganHistogram returns, for k = 1..6, the number of US tweets and
// the number of US users mentioning exactly k distinct organs —
// Figure 2(b). Index 0 corresponds to k = 1.
func (d *Dataset) MultiOrganHistogram() (tweets, users [organ.Count]int) {
	tweets = d.TweetOrganHistogram()
	ments := d.store.Mentions()
	for r := 0; r < d.store.Len(); r++ {
		k := 0
		for _, m := range ments[r*organ.Count : (r+1)*organ.Count] {
			if m > 0 {
				k++
			}
		}
		if k >= 1 && k <= organ.Count {
			users[k-1]++
		}
	}
	return tweets, users
}

// PopularityCorrelation computes the Spearman rank correlation between
// the per-organ user counts (Figure 2a) and the OPTN 2012 national
// transplant counts — the paper's r = .84 validation.
func (d *Dataset) PopularityCorrelation() (stats.SpearmanResult, error) {
	counts := d.UsersPerOrgan()
	x := make([]float64, organ.Count)
	for i, c := range counts {
		x[i] = float64(c)
	}
	return stats.Spearman(x, organ.TransplantCounts())
}

// PopularityRank returns the organs ordered by descending user count,
// ties broken by canonical order.
func (d *Dataset) PopularityRank() []organ.Organ {
	counts := d.UsersPerOrgan()
	order := organ.All()
	sort.SliceStable(order, func(i, j int) bool {
		return counts[order[i].Index()] > counts[order[j].Index()]
	})
	return order
}
