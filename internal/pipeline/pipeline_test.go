package pipeline

import (
	"context"
	"math"
	"testing"
	"time"

	"donorsense/internal/gen"
	"donorsense/internal/organ"
	"donorsense/internal/twitter"
)

var (
	sharedDataset *Dataset
	sharedCorpus  *gen.Corpus
)

func TestMain(m *testing.M) {
	sharedCorpus = gen.Generate(gen.DefaultConfig(0.02))
	sharedDataset = NewDataset()
	for _, tw := range sharedCorpus.Tweets {
		sharedDataset.Process(tw)
	}
	m.Run()
}

func TestProcessOutcomes(t *testing.T) {
	d := NewDataset()
	us := twitter.Tweet{
		Text:      "register as an organ donor, one kidney saves a life",
		CreatedAt: time.Now(),
		User:      twitter.User{ID: 1, Location: "Wichita, KS"},
	}
	if got := d.Process(us); got != CollectedUS {
		t.Errorf("US tweet outcome = %v", got)
	}
	foreign := us
	foreign.User = twitter.User{ID: 2, Location: "London"}
	if got := d.Process(foreign); got != CollectedNonUS {
		t.Errorf("foreign tweet outcome = %v", got)
	}
	junk := us
	junk.User = twitter.User{ID: 3, Location: "in my head"}
	if got := d.Process(junk); got != CollectedNonUS {
		t.Errorf("unlocatable tweet outcome = %v", got)
	}
	offTopic := us
	offTopic.Text = "kidney beans for dinner"
	if got := d.Process(offTopic); got != Rejected {
		t.Errorf("off-topic tweet outcome = %v", got)
	}
	if d.Users() != 1 || d.USTweets() != 1 || d.TotalCollected() != 3 {
		t.Errorf("counts: users=%d us=%d total=%d", d.Users(), d.USTweets(), d.TotalCollected())
	}
}

func TestGeoTagBeatsProfile(t *testing.T) {
	d := NewDataset()
	tw := twitter.Tweet{
		Text:      "heart transplant waiting list keeps growing — donate",
		CreatedAt: time.Now(),
		User:      twitter.User{ID: 1, Location: "London"}, // profile says UK
	}
	// ... but the geo-tag is in Topeka.
	tw.SetCoordinates(39.0, -95.7)
	if got := d.Process(tw); got != CollectedUS {
		t.Fatalf("geo-tagged tweet outcome = %v", got)
	}
	if d.StateOf()[1] != "KS" {
		t.Errorf("state = %s, want KS", d.StateOf()[1])
	}
	if d.GeoTagged() != 1 {
		t.Error("geo-tag not counted")
	}

	// And a foreign geo-tag excludes even with a US profile.
	tw2 := tw
	tw2.User = twitter.User{ID: 2, Location: "Boston, MA"}
	tw2.SetCoordinates(51.5, -0.1) // London
	if got := d.Process(tw2); got != CollectedNonUS {
		t.Errorf("foreign geo-tag outcome = %v", got)
	}
}

func TestOutcomeString(t *testing.T) {
	for _, o := range []Outcome{Rejected, CollectedNonUS, CollectedUS} {
		if o.String() == "outcome(?)" {
			t.Errorf("outcome %d unnamed", int(o))
		}
	}
}

func TestTableIShape(t *testing.T) {
	s := sharedDataset.Stats()
	cfg := sharedCorpus.Config

	// Window ≈ 385 days.
	if s.Days < cfg.Days-3 || s.Days > cfg.Days+1 {
		t.Errorf("Days = %d, want ≈%d", s.Days, cfg.Days)
	}
	// US users ≈ 71,947 × scale.
	wantUsers := 71947.0 * cfg.Scale
	if math.Abs(float64(s.Users)-wantUsers)/wantUsers > 0.05 {
		t.Errorf("Users = %d, want ≈%.0f ±5%%", s.Users, wantUsers)
	}
	// US tweets ≈ 134,986 × scale.
	wantTweets := 134986.0 * cfg.Scale
	if math.Abs(float64(s.TweetsCollected)-wantTweets)/wantTweets > 0.08 {
		t.Errorf("TweetsCollected = %d, want ≈%.0f ±8%%", s.TweetsCollected, wantTweets)
	}
	// Total collected ≈ 975,021 × scale (plus noise tweets are rejected,
	// not collected).
	wantTotal := 975021.0 * cfg.Scale
	if math.Abs(float64(s.TotalCollected)-wantTotal)/wantTotal > 0.08 {
		t.Errorf("TotalCollected = %d, want ≈%.0f ±8%%", s.TotalCollected, wantTotal)
	}
	// Ratios.
	if math.Abs(s.AvgTweetsPerUser-1.88) > 0.15 {
		t.Errorf("AvgTweetsPerUser = %.3f, want ≈1.88", s.AvgTweetsPerUser)
	}
	if math.Abs(s.OrgansPerTweet-1.03) > 0.02 {
		t.Errorf("OrgansPerTweet = %.3f, want ≈1.03", s.OrgansPerTweet)
	}
	if math.Abs(s.OrgansPerUser-1.13) > 0.06 {
		t.Errorf("OrgansPerUser = %.3f, want ≈1.13", s.OrgansPerUser)
	}
	if math.Abs(s.GeoTagRate-0.014) > 0.008 {
		t.Errorf("GeoTagRate = %.4f, want ≈0.014", s.GeoTagRate)
	}
	// Tweets/day scales with the corpus: 350 × scale.
	wantPerDay := 350.0 * cfg.Scale
	if math.Abs(s.AvgTweetsPerDay-wantPerDay)/wantPerDay > 0.1 {
		t.Errorf("AvgTweetsPerDay = %.2f, want ≈%.2f", s.AvgTweetsPerDay, wantPerDay)
	}
}

func TestFigure2aPopularityOrder(t *testing.T) {
	rank := sharedDataset.PopularityRank()
	want := []organ.Organ{organ.Heart, organ.Kidney, organ.Liver, organ.Lung, organ.Pancreas, organ.Intestine}
	for i := range want {
		if rank[i] != want[i] {
			t.Fatalf("popularity rank = %v, want %v", rank, want)
		}
	}
	counts := sharedDataset.UsersPerOrgan()
	if counts[organ.Intestine.Index()] == 0 {
		t.Error("intestine never mentioned; histogram degenerate")
	}
}

func TestFigure2aSpearmanValidation(t *testing.T) {
	res, err := sharedDataset.PopularityCorrelation()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: r = .84, p < .05. With heart over-ranked (1st on Twitter,
	// 3rd in transplants) and everything else aligned, exact Spearman on
	// n=6 is 1 − 6/35 ≈ 0.829.
	if math.Abs(res.R-0.829) > 0.06 {
		t.Errorf("Spearman r = %.3f, want ≈0.83", res.R)
	}
	if res.P >= 0.05 {
		t.Errorf("Spearman p = %.4f, want < .05", res.P)
	}
}

func TestFigure2bCrossover(t *testing.T) {
	tweets, users := sharedDataset.MultiOrganHistogram()
	// Paper: "The number of tweets is greater than the number of users
	// only for single mentions."
	if tweets[0] <= users[0] {
		t.Errorf("k=1: tweets %d <= users %d", tweets[0], users[0])
	}
	for k := 1; k < organ.Count; k++ {
		if tweets[k] > users[k] {
			t.Errorf("k=%d: tweets %d > users %d; crossover broken", k+1, tweets[k], users[k])
		}
	}
	// Users mentioning 2 organs must exist (multi-focus users).
	if users[1] == 0 {
		t.Error("no users mention two organs")
	}
}

func TestBuildAttentionMatchesUsers(t *testing.T) {
	a, err := sharedDataset.BuildAttention()
	if err != nil {
		t.Fatal(err)
	}
	if a.Users() != sharedDataset.Users() {
		t.Errorf("attention users = %d, dataset users = %d", a.Users(), sharedDataset.Users())
	}
	// Every attention row must be a distribution.
	for i := 0; i < a.Users(); i++ {
		sum := 0.0
		for _, v := range a.Row(i) {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestStateAssignmentAccuracy(t *testing.T) {
	states := sharedDataset.StateOf()
	checked, wrong := 0, 0
	for id, code := range states {
		p := sharedCorpus.Profiles[id]
		if !p.US {
			wrong++ // non-US user leaked in
			checked++
			continue
		}
		checked++
		if code != p.StateCode {
			wrong++
		}
	}
	if checked == 0 {
		t.Fatal("no users")
	}
	if frac := float64(wrong) / float64(checked); frac > 0.02 {
		t.Errorf("%.2f%% of state assignments wrong vs ground truth", frac*100)
	}
}

func TestCollectFromChannel(t *testing.T) {
	corpus := gen.Generate(gen.DefaultConfig(0.002))
	ch := make(chan twitter.Tweet, 64)
	d := NewDataset()
	done := make(chan int)
	go func() { done <- d.Collect(context.Background(), ch) }()
	for _, tw := range corpus.Tweets {
		ch <- tw
	}
	close(ch)
	n := <-done
	if n != len(corpus.Tweets) {
		t.Errorf("Collect processed %d, want %d", n, len(corpus.Tweets))
	}
	if d.Users() == 0 || d.USTweets() == 0 {
		t.Error("Collect produced empty dataset")
	}
}

func TestCollectRespectsContext(t *testing.T) {
	ch := make(chan twitter.Tweet)
	d := NewDataset()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if n := d.Collect(ctx, ch); n != 0 {
		t.Errorf("cancelled Collect processed %d", n)
	}
}

func TestStatsEmptyDataset(t *testing.T) {
	d := NewDataset()
	s := d.Stats()
	if s.Users != 0 || s.Days != 0 || s.AvgTweetsPerUser != 0 || s.OrgansPerTweet != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestHeavyTweeterDoesNotInflateUsers(t *testing.T) {
	d := NewDataset()
	tw := twitter.Tweet{
		Text:      "donate a kidney",
		CreatedAt: time.Now(),
		User:      twitter.User{ID: 5, Location: "Topeka, KS"},
	}
	for i := 0; i < 500; i++ {
		d.Process(tw)
	}
	if d.Users() != 1 {
		t.Errorf("users = %d, want 1", d.Users())
	}
	if d.USTweets() != 500 {
		t.Errorf("tweets = %d, want 500", d.USTweets())
	}
}

func BenchmarkProcess(b *testing.B) {
	corpus := gen.Generate(gen.DefaultConfig(0.01))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDataset()
		for _, tw := range corpus.Tweets {
			d.Process(tw)
		}
	}
}

func TestDeleteReversesContribution(t *testing.T) {
	corpus := gen.Generate(gen.DefaultConfig(0.005))
	// Reference dataset that never sees tweet X.
	var victim twitter.Tweet
	ref := NewDataset()
	full := NewDataset()
	full.TrackDeletions()
	for _, tw := range corpus.Tweets {
		full.Process(tw)
	}
	// Pick a retained tweet from a multi-tweet user to delete.
	counts := map[int64]int{}
	for _, tw := range corpus.Tweets {
		if corpus.Profiles[tw.User.ID].TweetCount > 1 && corpus.Profiles[tw.User.ID].US {
			counts[tw.User.ID]++
		}
	}
	for _, tw := range corpus.Tweets {
		p := corpus.Profiles[tw.User.ID]
		if victim.ID == 0 && p.US && p.TweetCount > 1 && full.DeletionTrackingEnabled() {
			if _, tracked := full.contributions[tw.ID]; tracked {
				victim = tw
				continue // ref never processes the victim
			}
		}
		ref.Process(tw)
	}
	if victim.ID == 0 {
		t.Fatal("no deletable tweet found")
	}
	if !full.Delete(victim.ID) {
		t.Fatal("Delete did not find the retained status")
	}
	// After deletion, the datasets must agree on everything observable.
	if full.USTweets() != ref.USTweets() || full.Users() != ref.Users() {
		t.Fatalf("counts differ after delete: %d/%d vs %d/%d",
			full.USTweets(), full.Users(), ref.USTweets(), ref.Users())
	}
	if full.UsersPerOrgan() != ref.UsersPerOrgan() {
		t.Error("users-per-organ differ after delete")
	}
	ft, fu := full.MultiOrganHistogram()
	rt, ru := ref.MultiOrganHistogram()
	if ft != rt || fu != ru {
		t.Error("multi-organ histograms differ after delete")
	}
	fullStats, refStats := full.Stats(), ref.Stats()
	if fullStats.OrgansPerTweet != refStats.OrgansPerTweet || fullStats.OrgansPerUser != refStats.OrgansPerUser {
		t.Error("ratio statistics differ after delete")
	}
	// Totals differ by exactly the deleted tweet's collection.
	if full.TotalCollected() != ref.TotalCollected() {
		t.Errorf("total collected %d vs %d", full.TotalCollected(), ref.TotalCollected())
	}
}

func TestDeleteLastTweetRemovesUser(t *testing.T) {
	d := NewDataset()
	d.TrackDeletions()
	tw := twitter.Tweet{
		ID:        555,
		Text:      "donate a kidney today",
		CreatedAt: time.Now(),
		User:      twitter.User{ID: 9, Location: "Topeka, KS"},
	}
	if d.Process(tw) != CollectedUS {
		t.Fatal("tweet not collected")
	}
	if !d.Delete(555) {
		t.Fatal("delete failed")
	}
	if d.Users() != 0 || d.USTweets() != 0 {
		t.Errorf("user survived deletion: users=%d tweets=%d", d.Users(), d.USTweets())
	}
	// Unknown and repeated deletes are no-ops.
	if d.Delete(555) || d.Delete(123) {
		t.Error("phantom delete succeeded")
	}
}

func TestDeleteWithoutTrackingIsNoop(t *testing.T) {
	d := NewDataset()
	tw := twitter.Tweet{
		ID:        7,
		Text:      "donate a kidney",
		CreatedAt: time.Now(),
		User:      twitter.User{ID: 1, Location: "Topeka, KS"},
	}
	d.Process(tw)
	if d.Delete(7) {
		t.Error("delete succeeded without tracking")
	}
	if d.USTweets() != 1 {
		t.Error("untracked delete mutated the dataset")
	}
}
