package pipeline

import "donorsense/internal/obs"

// ShardMetrics instruments the sharded collection subsystem: per-shard
// restart/stall counts, replay-buffer depth and backpressure, heartbeat
// age, checkpoint-backup fallbacks, and merge duration. One instance is
// shared by the Supervisor and the merge step.
type ShardMetrics struct {
	restarts     *obs.CounterVec // shard
	stalls       *obs.CounterVec // shard
	routed       *obs.CounterVec // shard
	bufferDepth  *obs.GaugeVec   // shard
	bufferFull   *obs.CounterVec // shard
	heartbeatAge *obs.GaugeVec   // shard
	fallbacks    *obs.Counter
	mergeSeconds *obs.Histogram
	merges       *obs.Counter
}

// NewShardMetrics registers the sharded-collection metric families on
// reg.
func NewShardMetrics(reg *obs.Registry) *ShardMetrics {
	return &ShardMetrics{
		restarts: reg.CounterVec("donorsense_shard_restarts_total",
			"Shard incarnations restarted after a crash or stall.", "shard"),
		stalls: reg.CounterVec("donorsense_shard_stalls_total",
			"Shard incarnations abandoned by the heartbeat monitor.", "shard"),
		routed: reg.CounterVec("donorsense_shard_routed_tweets_total",
			"Tweets routed to each shard by user-id hash.", "shard"),
		bufferDepth: reg.GaugeVec("donorsense_shard_buffer_depth",
			"Tweets held in each shard's replay buffer (routed but not yet durably checkpointed).", "shard"),
		bufferFull: reg.CounterVec("donorsense_shard_buffer_full_total",
			"Router blocks on a full shard buffer (bounded backpressure events).", "shard"),
		heartbeatAge: reg.GaugeVec("donorsense_shard_heartbeat_age_seconds",
			"Seconds since each shard's incarnation last made progress.", "shard"),
		fallbacks: reg.Counter("donorsense_checkpoint_fallbacks_total",
			"Checkpoint loads that fell back to the last-good .bak snapshot."),
		mergeSeconds: reg.Histogram("donorsense_merge_seconds",
			"Wall time of one N-shard dataset merge.", nil),
		merges: reg.Counter("donorsense_merges_total",
			"Shard-dataset merges performed."),
	}
}

// touch materializes the per-shard series of every vec family so the
// first scrape shows the complete schema with zero values.
func (m *ShardMetrics) touch(label string) {
	m.restarts.With(label).Add(0)
	m.stalls.With(label).Add(0)
	m.routed.With(label).Add(0)
	m.bufferDepth.With(label).Set(0)
	m.bufferFull.With(label).Add(0)
	m.heartbeatAge.With(label).Set(0)
}
