package pipeline

import (
	"donorsense/internal/organ"
	"donorsense/internal/userstore"
)

// The incremental-analytics plumbing: the report engine subscribes to the
// user store's row-level change feed through the Dataset so it can patch
// Û and its accumulators instead of rebuilding them (DESIGN.md §14). The
// Dataset stays the owner of the store; the engine only ever sees row
// snapshots (UserAt) and drained deltas.

// EnableDeltaTracking turns on row-level change tracking in the user
// store. Idempotent; tracking off costs the fold path nothing beyond a
// nil check, so it is off unless an incremental consumer asks.
func (d *Dataset) EnableDeltaTracking() { d.store.EnableDeltaTracking() }

// DeltaTracking reports whether change tracking is on.
func (d *Dataset) DeltaTracking() bool { return d.store.DeltaTracking() }

// DirtyRows returns the number of store rows touched since the last
// drain without consuming the delta — the feed for the
// analytics_dirty_rows gauge.
func (d *Dataset) DirtyRows() int { return d.store.DirtyRows() }

// DrainDelta hands over the accumulated change set and resets tracking.
// See userstore.Delta for the consumption contract (apply Deleted first,
// then re-read the dirty rows against the live store).
func (d *Dataset) DrainDelta() userstore.Delta { return d.store.DrainDelta() }

// UserAt snapshots the identity fields of one live store row — the read
// side of the delta contract. The mentions slice aliases the store
// column; callers must copy anything they retain.
func (d *Dataset) UserAt(row uint32) (id int64, stateCode string, mentions []int32) {
	r := int32(row)
	return d.store.ID(r), d.store.StateCode(r), d.store.MentionsRow(r)
}

// TweetOrganHistogram returns the Figure 2(b) tweet histogram (index 0 ⇒
// k = 1 distinct organs) straight from the per-tweet counter — O(6), no
// user scan, unlike MultiOrganHistogram which also derives the user half.
func (d *Dataset) TweetOrganHistogram() [organ.Count]int {
	var tweets [organ.Count]int
	for k, n := range d.organsPerTweet {
		if k >= 1 && k <= organ.Count {
			tweets[k-1] = n
		}
	}
	return tweets
}

// SetAnalyticsState attaches the report engine's opaque warm-start blob
// (clustering state) so WriteCheckpoint persists it alongside the
// collection state. The dataset never interprets the bytes.
func (d *Dataset) SetAnalyticsState(b []byte) { d.analytics = b }

// AnalyticsState returns the warm-start blob restored from a checkpoint
// (nil when none was persisted).
func (d *Dataset) AnalyticsState() []byte { return d.analytics }
