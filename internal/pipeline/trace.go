package pipeline

import "donorsense/internal/obs/trace"

// Trace propagation through the pipeline rides the tweets themselves:
// the stream client stamps a sampled tweet's Tweet.TraceCtx, and every
// stage here — extract and locate on the workers, the in-order fold on
// the folder, the checkpoint save after it — parents a span onto that
// context. An unsampled tweet carries the zero context and each stage
// pays one nil/zero check, keeping the hot path allocation-free.

// SetTracer attaches a tracer to the dataset's processing stages. Nil
// (the default) disables span creation entirely. Call before processing
// starts; the tracer itself is safe for the parallel workers to share.
func (d *Dataset) SetTracer(t *trace.Tracer) { d.tracer = t }

// SetTraceScope labels every span this dataset starts with its shard and
// restart incarnation, so a waterfall read off /debug/traces attributes
// each stage to the shard — and the specific incarnation — that ran it.
// The shard supervisor calls this after every restore, before processing
// resumes. An empty shard clears the scope.
func (d *Dataset) SetTraceScope(shard string, incarnation int) {
	d.traceShard = shard
	d.traceIncarnation = int64(incarnation)
}

// startSpan starts a stage span parented on a tweet's trace context,
// tagged with the dataset's shard scope. Returns nil (free) when the
// tweet is unsampled or no tracer is attached.
func (d *Dataset) startSpan(name string, parent trace.SpanContext) *trace.Span {
	sp := d.tracer.StartChild(name, parent)
	if sp != nil && d.traceShard != "" {
		sp.SetAttr("shard", d.traceShard)
		sp.SetInt("incarnation", d.traceIncarnation)
	}
	return sp
}

// endFold finishes a fold span and remembers the folded tweet's trace so
// the next checkpoint save can parent onto it — extending the waterfall
// from stream read all the way into durability. Folding is
// single-threaded (the folder goroutine), so pendingTrace needs no lock.
func (d *Dataset) endFold(sp *trace.Span, ctx trace.SpanContext, o Outcome) {
	if ctx.Sampled() {
		d.pendingTrace = ctx
	}
	if sp != nil {
		sp.SetAttr("outcome", outcomeLabel(o))
		sp.End()
	}
}

// exemplarID renders a sampled context's trace ID for histogram
// exemplars; "" (no exemplar) when unsampled.
func exemplarID(tc trace.SpanContext) string {
	if !tc.Sampled() {
		return ""
	}
	return tc.TraceString()
}
