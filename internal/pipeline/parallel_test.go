package pipeline

import (
	"reflect"
	"testing"

	"donorsense/internal/gen"
	"donorsense/internal/text"
	"donorsense/internal/twitter"
)

// TestProcessAllMatchesSequential: the parallel front-end must produce a
// bit-identical dataset to sequential Process.
func TestProcessAllMatchesSequential(t *testing.T) {
	corpus := gen.Generate(gen.DefaultConfig(0.01))

	seq := NewDataset()
	var seqRej, seqNonUS, seqUS int
	for _, tw := range corpus.Tweets {
		switch seq.Process(tw) {
		case Rejected:
			seqRej++
		case CollectedNonUS:
			seqNonUS++
		case CollectedUS:
			seqUS++
		}
	}

	par := NewDataset()
	rej, nonUS, us := par.ProcessAll(corpus.Tweets, 4)

	if rej != seqRej || nonUS != seqNonUS || us != seqUS {
		t.Fatalf("outcome counts differ: parallel (%d,%d,%d) vs sequential (%d,%d,%d)",
			rej, nonUS, us, seqRej, seqNonUS, seqUS)
	}
	if par.Users() != seq.Users() || par.USTweets() != seq.USTweets() ||
		par.TotalCollected() != seq.TotalCollected() || par.GeoTagged() != seq.GeoTagged() {
		t.Fatal("aggregate counters differ")
	}
	if !reflect.DeepEqual(par.Stats(), seq.Stats()) {
		t.Errorf("stats differ:\n%+v\n%+v", par.Stats(), seq.Stats())
	}
	if par.UsersPerOrgan() != seq.UsersPerOrgan() {
		t.Error("users-per-organ differ")
	}
	pt, pu := par.MultiOrganHistogram()
	st, su := seq.MultiOrganHistogram()
	if pt != st || pu != su {
		t.Error("multi-organ histograms differ")
	}
	// Per-user records identical.
	seq.EachUser(func(u *UserRecord) {
		pu, ok := par.LookupUser(u.ID)
		if !ok || pu != *u {
			t.Fatalf("user %d differs: %+v vs %+v", u.ID, pu, u)
		}
	})
}

func TestProcessAllWorkerCounts(t *testing.T) {
	corpus := gen.Generate(gen.DefaultConfig(0.005))
	want := NewDataset()
	want.ProcessAll(corpus.Tweets, 1)
	for _, workers := range []int{0, 2, 3, 8} {
		d := NewDataset()
		d.ProcessAll(corpus.Tweets, workers)
		if d.Users() != want.Users() || d.USTweets() != want.USTweets() {
			t.Errorf("workers=%d: %d users / %d tweets, want %d / %d",
				workers, d.Users(), d.USTweets(), want.Users(), want.USTweets())
		}
	}
}

func TestProcessAllEmptyAndTiny(t *testing.T) {
	d := NewDataset()
	if r, n, u := d.ProcessAll(nil, 4); r+n+u != 0 {
		t.Error("empty corpus produced outcomes")
	}
	corpus := gen.Generate(gen.DefaultConfig(0.001))
	small := corpus.Tweets[:10]
	d2 := NewDataset()
	r, n, u := d2.ProcessAll(small, 4)
	if r+n+u != 10 {
		t.Errorf("outcomes %d+%d+%d != 10", r, n, u)
	}
}

func TestProcessAllInvokesHook(t *testing.T) {
	corpus := gen.Generate(gen.DefaultConfig(0.005))
	d := NewDataset()
	hooked := 0
	d.OnUSTweet = func(tw twitter.Tweet, ex text.Extraction) { hooked++ }
	_, _, us := d.ProcessAll(corpus.Tweets, 4)
	if hooked != us {
		t.Errorf("hook fired %d times for %d US tweets", hooked, us)
	}
}

func BenchmarkProcessAll(b *testing.B) {
	corpus := gen.Generate(gen.DefaultConfig(0.02))
	for _, workers := range []int{1, 2, 4} {
		b.Run(benchName(workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d := NewDataset()
				d.ProcessAll(corpus.Tweets, workers)
			}
		})
	}
}

func benchName(workers int) string {
	return "workers-" + string(rune('0'+workers))
}
