package pipeline

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"hash/crc32"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"donorsense/internal/geo"
)

// This file covers the checkpoint v2 → v3 migration: a legacy snapshot
// (users as a map of records) must load into the columnar store with
// nothing lost, and re-saving it must produce a v3 snapshot that round-
// trips to the same dataset — merge cursor and delete log included.

// writeCheckpointV2 emits a dataset in the legacy v2 format. It is the
// old snapshot()+WriteCheckpoint pair, kept test-side as the fixture
// generator for migration coverage.
func writeCheckpointV2(t *testing.T, d *Dataset, w *bytes.Buffer) {
	t.Helper()
	st := checkpointState{
		Users:          make(map[int64]checkpointUser, d.Users()),
		TotalCollected: d.totalCollected,
		USTweets:       d.usTweets,
		GeoTagged:      d.geoTagged,
		MentionSum:     d.mentionSum,
		FirstTweet:     d.firstTweet,
		LastTweet:      d.lastTweet,
		OrgansPerTweet: d.organsPerTweet,
		TrackDeletions: d.contributions != nil,
		Contributions:  snapshotContributions(d.contributions),
		LocCache:       make(map[string]geo.Location, d.locCache.len()),
		Cursor:         d.cursor,
	}
	d.EachUser(func(u *UserRecord) {
		st.Users[u.ID] = checkpointUser{
			ID:               u.ID,
			StateCode:        u.StateCode,
			GeoTagged:        u.GeoTagged,
			Tweets:           u.Tweets,
			Mentions:         u.Mentions,
			ClinicalMentions: u.ClinicalMentions,
			Hashtags:         u.Hashtags,
			FirstSeen:        u.FirstSeen,
			FirstTweetID:     u.FirstTweetID,
		}
	})
	d.locCache.each(func(k string, v geo.Location) { st.LocCache[k] = v })

	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(st); err != nil {
		t.Fatalf("encode v2: %v", err)
	}
	magic := checkpointMagic
	magic[7] = checkpointVersionLegacy
	w.Write(magic[:])
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.ChecksumIEEE(payload.Bytes()))
	w.Write(hdr[:])
	w.Write(payload.Bytes())
}

// assertDatasetsIdenticalFull is assertDatasetsEqual plus the state a
// resumed collector depends on: every user record, the stream cursor,
// and the delete log.
func assertDatasetsIdenticalFull(t *testing.T, got, want *Dataset) {
	t.Helper()
	assertDatasetsEqual(t, got, want)
	if got.Cursor() != want.Cursor() {
		t.Errorf("cursor = %d, want %d", got.Cursor(), want.Cursor())
	}
	if got.DeletionTrackingEnabled() != want.DeletionTrackingEnabled() {
		t.Fatalf("deletion tracking = %v, want %v",
			got.DeletionTrackingEnabled(), want.DeletionTrackingEnabled())
	}
	if !reflect.DeepEqual(got.contributions, want.contributions) {
		t.Errorf("delete log differs: %d vs %d records",
			len(got.contributions), len(want.contributions))
	}
	want.EachUser(func(u *UserRecord) {
		gu, ok := got.LookupUser(u.ID)
		if !ok || gu != *u {
			t.Fatalf("user %d differs: %+v vs %+v", u.ID, gu, u)
		}
	})
	if got.Users() != want.Users() {
		t.Errorf("users = %d, want %d", got.Users(), want.Users())
	}
}

// TestCheckpointV2MigrationRoundTrip is the migration property test over
// randomized datasets: build a dataset (randomized tweet window, delete
// tracking on or off, random deletes, a nonzero cursor), write it in the
// legacy v2 format, load it (migrating into the columnar store), assert
// full equality, then save v3 and reload, asserting equality survives
// the new format too.
func TestCheckpointV2MigrationRoundTrip(t *testing.T) {
	tweets := sharedCorpus.Tweets
	for seed := int64(1); seed <= 4; seed++ {
		r := rand.New(rand.NewSource(seed))
		d := NewDataset()
		track := seed%2 == 0
		if track {
			d.TrackDeletions()
		}
		lo := r.Intn(len(tweets) / 2)
		hi := lo + 1 + r.Intn(len(tweets)-lo-1)
		var retained []int64
		for _, tw := range tweets[lo:hi] {
			if d.Process(tw) == CollectedUS {
				retained = append(retained, tw.ID)
			}
		}
		if track {
			for i := 0; i < len(retained)/3; i++ {
				d.Delete(retained[r.Intn(len(retained))])
			}
		}
		d.SetCursor(uint64(r.Int63()))

		var v2 bytes.Buffer
		writeCheckpointV2(t, d, &v2)
		migrated, err := ReadCheckpoint(bytes.NewReader(v2.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: load v2: %v", seed, err)
		}
		assertDatasetsIdenticalFull(t, migrated, d)

		var v3 bytes.Buffer
		if err := migrated.WriteCheckpoint(&v3); err != nil {
			t.Fatalf("seed %d: save v3: %v", seed, err)
		}
		if v3.Bytes()[7] != checkpointVersion {
			t.Fatalf("seed %d: re-save wrote version %d, want %d",
				seed, v3.Bytes()[7], checkpointVersion)
		}
		reloaded, err := ReadCheckpoint(bytes.NewReader(v3.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: reload v3: %v", seed, err)
		}
		assertDatasetsIdenticalFull(t, reloaded, d)

		// The migrated dataset must keep collecting identically: fold the
		// suffix into both and compare again.
		for _, tw := range tweets[hi:min(hi+2000, len(tweets))] {
			d.Process(tw)
			reloaded.Process(tw)
		}
		assertDatasetsIdenticalFull(t, reloaded, d)
	}
}

// checkpointStateV3Wire is the exact wire shape of a pre-analytics v3
// payload (checkpointStateV4 without the Analytics field), kept
// test-side as the fixture generator for v3 → v4 migration coverage.
type checkpointStateV3Wire struct {
	UserIDs        []int64
	FirstSeen      []int64
	FirstTweetID   []int64
	Tweets         []int32
	Clinical       []int32
	Hashtags       []int32
	StateIdx       []uint8
	UserFlags      []uint8
	Mentions       []int32
	StateCodes     []string
	TotalCollected int
	USTweets       int
	GeoTagged      int
	MentionSum     int
	FirstTweet     time.Time
	LastTweet      time.Time
	OrgansPerTweet map[int]int
	TrackDeletions bool
	Contributions  map[int64]checkpointContribution
	LocCache       map[string]geo.Location
	Cursor         uint64
}

// writeCheckpointV3 emits a dataset in the pre-analytics v3 format: the
// v4 snapshot re-encoded through the old wire struct under the old
// version byte.
func writeCheckpointV3(t *testing.T, d *Dataset, w *bytes.Buffer) {
	t.Helper()
	v4 := d.snapshot()
	st := checkpointStateV3Wire{
		UserIDs:        v4.UserIDs,
		FirstSeen:      v4.FirstSeen,
		FirstTweetID:   v4.FirstTweetID,
		Tweets:         v4.Tweets,
		Clinical:       v4.Clinical,
		Hashtags:       v4.Hashtags,
		StateIdx:       v4.StateIdx,
		UserFlags:      v4.UserFlags,
		Mentions:       v4.Mentions,
		StateCodes:     v4.StateCodes,
		TotalCollected: v4.TotalCollected,
		USTweets:       v4.USTweets,
		GeoTagged:      v4.GeoTagged,
		MentionSum:     v4.MentionSum,
		FirstTweet:     v4.FirstTweet,
		LastTweet:      v4.LastTweet,
		OrgansPerTweet: v4.OrgansPerTweet,
		TrackDeletions: v4.TrackDeletions,
		Contributions:  v4.Contributions,
		LocCache:       v4.LocCache,
		Cursor:         v4.Cursor,
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(st); err != nil {
		t.Fatalf("encode v3: %v", err)
	}
	magic := checkpointMagic
	magic[7] = checkpointVersionV3
	w.Write(magic[:])
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.ChecksumIEEE(payload.Bytes()))
	w.Write(hdr[:])
	w.Write(payload.Bytes())
}

// TestCheckpointV3MigrationRoundTrip covers the v3 → v4 migration: a
// pre-analytics snapshot must load with the analytics blob nil and
// everything else intact, and re-saving must produce a v4 snapshot that
// round-trips the blob byte-for-byte once one is attached.
func TestCheckpointV3MigrationRoundTrip(t *testing.T) {
	tweets := sharedCorpus.Tweets
	for seed := int64(1); seed <= 4; seed++ {
		r := rand.New(rand.NewSource(seed))
		d := NewDataset()
		if seed%2 == 0 {
			d.TrackDeletions()
		}
		lo := r.Intn(len(tweets) / 2)
		hi := lo + 1 + r.Intn(len(tweets)-lo-1)
		for _, tw := range tweets[lo:hi] {
			d.Process(tw)
		}
		d.SetCursor(uint64(r.Int63()))

		var v3 bytes.Buffer
		writeCheckpointV3(t, d, &v3)
		migrated, err := ReadCheckpoint(bytes.NewReader(v3.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: load v3: %v", seed, err)
		}
		assertDatasetsIdenticalFull(t, migrated, d)
		if migrated.AnalyticsState() != nil {
			t.Fatalf("seed %d: v3 snapshot loaded a non-nil analytics blob", seed)
		}

		blob := make([]byte, 64)
		r.Read(blob)
		migrated.SetAnalyticsState(blob)
		var v4 bytes.Buffer
		if err := migrated.WriteCheckpoint(&v4); err != nil {
			t.Fatalf("seed %d: save v4: %v", seed, err)
		}
		if v4.Bytes()[7] != checkpointVersion {
			t.Fatalf("seed %d: re-save wrote version %d, want %d",
				seed, v4.Bytes()[7], checkpointVersion)
		}
		reloaded, err := ReadCheckpoint(bytes.NewReader(v4.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: reload v4: %v", seed, err)
		}
		assertDatasetsIdenticalFull(t, reloaded, d)
		if !bytes.Equal(reloaded.AnalyticsState(), blob) {
			t.Fatalf("seed %d: analytics blob did not round-trip", seed)
		}
	}
}
