package pipeline

import (
	"math/rand"
	"testing"
	"time"

	"donorsense/internal/twitter"
)

// shardDatasets partitions the corpus by user-id hash — exactly how the
// shard supervisor routes — and folds each partition into its own
// dataset.
func shardDatasets(tweets []twitter.Tweet, n int, track bool) []*Dataset {
	parts := make([]*Dataset, n)
	for i := range parts {
		parts[i] = NewDataset()
		if track {
			parts[i].TrackDeletions()
		}
	}
	for _, tw := range tweets {
		parts[twitter.ShardIndex(tw.User.ID, n)].Process(tw)
	}
	return parts
}

// assertUsersEqual compares the full per-user records, not just the
// aggregate statistics: identity fields, counts, and the organ-mention
// vectors must all match.
func assertUsersEqual(t *testing.T, got, want *Dataset) {
	t.Helper()
	if got.Users() != want.Users() {
		t.Fatalf("user count = %d, want %d", got.Users(), want.Users())
	}
	wantRec := make(map[int64]UserRecord, want.Users())
	want.EachUser(func(u *UserRecord) { wantRec[u.ID] = *u })
	got.EachUser(func(u *UserRecord) {
		w, ok := wantRec[u.ID]
		if !ok {
			t.Errorf("unexpected user %d in merged dataset", u.ID)
			return
		}
		if *u != w {
			t.Errorf("user %d record mismatch:\n got %+v\nwant %+v", u.ID, *u, w)
		}
	})
}

// TestMergeShardedEqualsSequential is the associativity/commutativity
// property test: split the shared corpus across 2–8 shards by user-id
// hash, merge the shard datasets in several shuffled orders, and require
// every merge order to reproduce the single-process dataset exactly —
// statistics and per-user records alike.
func TestMergeShardedEqualsSequential(t *testing.T) {
	tweets := sharedCorpus.Tweets
	rng := rand.New(rand.NewSource(7))
	for shards := 2; shards <= 8; shards++ {
		for trial := 0; trial < 3; trial++ {
			parts := shardDatasets(tweets, shards, false)
			order := rng.Perm(shards)
			merged := parts[order[0]]
			for _, i := range order[1:] {
				merged.Merge(parts[i])
			}
			assertDatasetsEqual(t, merged, sharedDataset)
			assertUsersEqual(t, merged, sharedDataset)
		}
	}
}

// TestMergeTreeGrouping merges already-merged datasets (pairwise rounds
// over 8 shards) — the grouping a hierarchical reducer would use — and
// requires the same result as any flat fold.
func TestMergeTreeGrouping(t *testing.T) {
	parts := shardDatasets(sharedCorpus.Tweets, 8, false)
	for len(parts) > 1 {
		next := parts[:0]
		for i := 0; i+1 < len(parts); i += 2 {
			parts[i].Merge(parts[i+1])
			next = append(next, parts[i])
		}
		parts = next
	}
	assertDatasetsEqual(t, parts[0], sharedDataset)
	assertUsersEqual(t, parts[0], sharedDataset)
}

// mergeTweet builds an in-context US tweet for the collision tests.
func mergeTweet(id, userID int64, at time.Time, loc string) twitter.Tweet {
	return twitter.Tweet{
		ID:        id,
		Text:      "register as an organ donor, one kidney saves a life",
		CreatedAt: at,
		User:      twitter.User{ID: userID, Location: loc},
	}
}

// TestMergeUserCollisionTieBreak pins the documented conflict rule: when
// the same user id appears on both sides with different identity fields,
// the record with the earlier first retained tweet supplies StateCode /
// GeoTagged / FirstSeen / FirstTweetID, counts sum, and the outcome is
// the same whichever side the merge starts from.
func TestMergeUserCollisionTieBreak(t *testing.T) {
	base := time.Date(2016, time.March, 6, 12, 0, 0, 0, time.UTC)
	early := mergeTweet(100, 42, base, "Wichita, KS")
	late := mergeTweet(200, 42, base.Add(time.Hour), "Austin, TX")

	build := func(tweets ...twitter.Tweet) *Dataset {
		d := NewDataset()
		for _, tw := range tweets {
			if got := d.Process(tw); got != CollectedUS {
				t.Fatalf("tweet %d outcome = %v, want CollectedUS", tw.ID, got)
			}
		}
		return d
	}

	for name, order := range map[string][2]twitter.Tweet{
		"early-into-late": {late, early},
		"late-into-early": {early, late},
	} {
		d := build(order[0])
		d.Merge(build(order[1]))
		if d.Users() != 1 {
			t.Fatalf("%s: users = %d, want 1", name, d.Users())
		}
		d.EachUser(func(u *UserRecord) {
			if u.StateCode != "KS" || u.GeoTagged {
				t.Errorf("%s: identity = (%s, geo=%v), want earlier record's (KS, geo=false)", name, u.StateCode, u.GeoTagged)
			}
			if u.FirstTweetID != 100 || u.FirstSeen != base.UnixNano() {
				t.Errorf("%s: first-seen key = (%d, %d), want (100, %d)", name, u.FirstTweetID, u.FirstSeen, base.UnixNano())
			}
			if u.Tweets != 2 {
				t.Errorf("%s: tweets = %d, want 2", name, u.Tweets)
			}
		})
	}

	// Same timestamp on both sides: the smaller tweet id wins.
	a := mergeTweet(300, 77, base, "Austin, TX")
	b := mergeTweet(301, 77, base, "Wichita, KS")
	d := build(b)
	d.Merge(build(a))
	d.EachUser(func(u *UserRecord) {
		if u.StateCode != "TX" || u.FirstTweetID != 300 {
			t.Errorf("timestamp tie: got (%s, %d), want smaller-id record (TX, 300)", u.StateCode, u.FirstTweetID)
		}
	})
}

// TestMergeDeletionTracking: a merged dataset must honor a delete notice
// for a tweet that was folded on another shard, and tracking must switch
// off if any input does not track.
func TestMergeDeletionTracking(t *testing.T) {
	base := time.Date(2016, time.March, 6, 12, 0, 0, 0, time.UTC)
	t1 := mergeTweet(100, 42, base, "Wichita, KS")
	t2 := mergeTweet(200, 43, base.Add(time.Minute), "Austin, TX")

	a, b := NewDataset(), NewDataset()
	a.TrackDeletions()
	b.TrackDeletions()
	a.Process(t1)
	b.Process(t2)
	a.Merge(b)
	if !a.Delete(200) {
		t.Error("merged dataset did not honor delete of a tweet from the other shard")
	}
	if a.USTweets() != 1 || a.Users() != 1 {
		t.Errorf("after delete: %d tweets / %d users, want 1 / 1", a.USTweets(), a.Users())
	}

	c, d := NewDataset(), NewDataset()
	c.TrackDeletions()
	c.Process(t1)
	d.Process(t2) // not tracking
	c.Merge(d)
	if c.Delete(100) {
		t.Error("merge with a non-tracking input must disable deletion tracking")
	}
}
