package pipeline

import (
	"sync"

	"donorsense/internal/geo"
)

// locCacheCap bounds the geocode memo across all shards; the cache holds
// at most twice this many entries.
const locCacheCap = 1 << 16

// locCacheShards is the number of independently locked memo shards. Must
// be a power of two so a hash can pick a shard with a mask.
const locCacheShards = 16

// locCache is a two-generation bounded memo: lookups hit the current
// generation then the previous one (promoting on hit); when the current
// generation fills, it becomes the previous and a fresh one starts. Hot
// strings survive rotation, cold ones age out, and memory stays O(cap)
// with O(1) operations — all an adversarial profile-location stream can
// do is evict cold entries. It is not safe for concurrent use; the
// sharded wrapper below adds locking.
type locCache struct {
	cap       int
	cur, prev map[string]geo.Location
	// onRotate, when set, observes each generation rotation (telemetry).
	onRotate func()
}

func newLocCache(capacity int) *locCache {
	if capacity < 1 {
		capacity = 1
	}
	return &locCache{cap: capacity, cur: make(map[string]geo.Location)}
}

func (c *locCache) get(k string) (geo.Location, bool) {
	if l, ok := c.cur[k]; ok {
		return l, true
	}
	if l, ok := c.prev[k]; ok {
		c.put(k, l) // promote so hot entries survive the next rotation
		return l, true
	}
	return geo.Location{}, false
}

func (c *locCache) put(k string, v geo.Location) {
	if len(c.cur) >= c.cap {
		// Overwriting a key already in the current generation does not
		// grow it, so only rotate for genuinely new keys.
		if _, exists := c.cur[k]; !exists {
			c.prev = c.cur
			c.cur = make(map[string]geo.Location, c.cap/4)
			if c.onRotate != nil {
				c.onRotate()
			}
		}
	}
	c.cur[k] = v
}

// len reports the total cached entries across both generations.
func (c *locCache) len() int { return len(c.cur) + len(c.prev) }

// each visits every cached entry (current generation winning duplicates).
func (c *locCache) each(fn func(string, geo.Location)) {
	for k, v := range c.prev {
		if _, shadowed := c.cur[k]; !shadowed {
			fn(k, v)
		}
	}
	for k, v := range c.cur {
		fn(k, v)
	}
}

// lockedLocCache is one shard: a generation memo behind a read/write lock.
type lockedLocCache struct {
	mu sync.RWMutex
	c  *locCache
}

// shardedLocCache splits the geocode memo across locCacheShards
// independently locked shards so ProcessAll workers can probe it
// concurrently. The common case — a hot profile string sitting in a
// shard's current generation — takes only a read lock; promotions from
// the previous generation and inserts lock one shard, never the whole
// cache. Aside from rotations happening per shard, semantics match a
// single locCache of the same total capacity.
type shardedLocCache struct {
	shards [locCacheShards]lockedLocCache
}

func newShardedLocCache(capacity int) *shardedLocCache {
	per := capacity / locCacheShards
	if per < 1 {
		per = 1
	}
	s := &shardedLocCache{}
	for i := range s.shards {
		s.shards[i].c = newLocCache(per)
	}
	return s
}

// shard picks a shard by FNV-1a over the key.
func (s *shardedLocCache) shard(k string) *lockedLocCache {
	h := uint32(2166136261)
	for i := 0; i < len(k); i++ {
		h ^= uint32(k[i])
		h *= 16777619
	}
	return &s.shards[h&(locCacheShards-1)]
}

func (s *shardedLocCache) get(k string) (geo.Location, bool) {
	sh := s.shard(k)
	sh.mu.RLock()
	l, ok := sh.c.cur[k]
	sh.mu.RUnlock()
	if ok {
		return l, true
	}
	// Miss in the current generation: the previous-generation lookup
	// promotes on hit, so it needs the write lock (and re-checks cur in
	// case another goroutine inserted meanwhile).
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.c.get(k)
}

func (s *shardedLocCache) put(k string, v geo.Location) {
	sh := s.shard(k)
	sh.mu.Lock()
	sh.c.put(k, v)
	sh.mu.Unlock()
}

// len reports the total cached entries across all shards and generations.
func (s *shardedLocCache) len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += sh.c.len()
		sh.mu.RUnlock()
	}
	return n
}

// each visits every cached entry across all shards.
func (s *shardedLocCache) each(fn func(string, geo.Location)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		sh.c.each(fn)
		sh.mu.RUnlock()
	}
}

// setOnRotate installs (or clears, with nil) the rotation observer on
// every shard.
func (s *shardedLocCache) setOnRotate(fn func()) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.c.onRotate = fn
		sh.mu.Unlock()
	}
}
