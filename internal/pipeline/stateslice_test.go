package pipeline

import (
	"math/rand"
	"testing"

	"donorsense/internal/organ"
	"donorsense/internal/twitter"
)

// Satellite coverage for the per-state bitset indices: the per-state
// user counts and organ sums EachStateSlice reads off the bitset words
// must equal a brute-force sweep over every user record, on randomized
// datasets and — because deletes swap rows and merges rewrite identity
// fields — after merging shards and honoring delete notices.

type stateSliceOracle struct {
	users    map[string]int
	mentions map[string][organ.Count]int64
}

// bruteForceStateSlices sweeps EachUser (record materialization, no
// bitsets) into per-state aggregates.
func bruteForceStateSlices(d *Dataset) stateSliceOracle {
	o := stateSliceOracle{
		users:    make(map[string]int),
		mentions: make(map[string][organ.Count]int64),
	}
	d.EachUser(func(u *UserRecord) {
		o.users[u.StateCode]++
		sums := o.mentions[u.StateCode]
		for i, m := range u.Mentions {
			sums[i] += int64(m)
		}
		o.mentions[u.StateCode] = sums
	})
	return o
}

func assertStateSlicesMatch(t *testing.T, label string, d *Dataset) {
	t.Helper()
	want := bruteForceStateSlices(d)
	seen := make(map[string]bool)
	d.EachStateSlice(func(code string, users int, mentions [organ.Count]int64) {
		if seen[code] {
			t.Fatalf("%s: state %s sliced twice", label, code)
		}
		seen[code] = true
		if users != want.users[code] {
			t.Errorf("%s: state %s users = %d, brute force %d", label, code, users, want.users[code])
		}
		if mentions != want.mentions[code] {
			t.Errorf("%s: state %s mention sums = %v, brute force %v",
				label, code, mentions, want.mentions[code])
		}
	})
	for code, n := range want.users {
		if !seen[code] && n > 0 {
			t.Errorf("%s: state %s (%d users) missing from bitset iteration", label, code, n)
		}
	}
}

// TestStateSlicesMatchBruteForce runs the bitset-vs-oracle comparison on
// randomized datasets: random tweet windows, then random deletes, then a
// shard merge, re-checking after each phase.
func TestStateSlicesMatchBruteForce(t *testing.T) {
	tweets := sharedCorpus.Tweets
	for seed := int64(1); seed <= 4; seed++ {
		r := rand.New(rand.NewSource(seed))

		// Phase 1: a randomized collection window.
		d := NewDataset()
		d.TrackDeletions()
		lo := r.Intn(len(tweets) / 2)
		hi := lo + 1 + r.Intn(len(tweets)-lo-1)
		var retained []int64
		for _, tw := range tweets[lo:hi] {
			if d.Process(tw) == CollectedUS {
				retained = append(retained, tw.ID)
			}
		}
		assertStateSlicesMatch(t, "collected", d)

		// Phase 2: honor a batch of random delete notices (some repeats,
		// which must be no-ops). Deleting a user's last tweet removes the
		// row via swap-last, the case most likely to corrupt a bitset.
		for i := 0; i < len(retained)/2; i++ {
			d.Delete(retained[r.Intn(len(retained))])
		}
		assertStateSlicesMatch(t, "post-delete", d)

		// Phase 3: merge in a freshly-collected shard partition of the
		// remaining tweets (identity rewrites move rows between bitsets).
		const shards = 3
		parts := make([]*Dataset, shards)
		for i := range parts {
			parts[i] = NewDataset()
		}
		for _, tw := range tweets[hi:] {
			parts[twitter.ShardIndex(tw.User.ID, shards)].Process(tw)
		}
		for _, p := range parts {
			d.Merge(p)
		}
		assertStateSlicesMatch(t, "post-merge", d)
	}
}
