package serve

import "donorsense/internal/obs"

// Metrics exports the serve layer into an obs.Registry. Every counter on
// the request hot path is pre-resolved at construction — the handler
// increments a *obs.Counter directly (lock-free CAS) and never touches a
// vec's family lock while serving.
type Metrics struct {
	// hit/notModified/render are indexed by endpoint.
	hit         [numEndpoints]*obs.Counter
	notModified [numEndpoints]*obs.Counter
	render      [numEndpoints]*obs.Counter

	coalesced  *obs.Counter
	badRequest *obs.Counter
	notFound   *obs.Counter
	rejected   *obs.Counter

	renderSeconds *obs.Histogram
}

// NewMetrics registers the donorsense_serve_* families and pre-resolves
// the hot-path series. The cache-size gauge reads through the publisher
// so it always reflects the snapshot currently served.
func NewMetrics(reg *obs.Registry, p *Publisher) *Metrics {
	m := &Metrics{}
	requests := reg.CounterVec("donorsense_serve_requests_total",
		"Query-API requests handled, by endpoint and result.",
		"endpoint", "result")
	for ep := endpoint(0); ep < numEndpoints; ep++ {
		name := endpointNames[ep]
		m.hit[ep] = requests.With(name, "hit")
		m.notModified[ep] = requests.With(name, "not_modified")
		m.render[ep] = requests.With(name, "render")
	}
	m.coalesced = requests.With("any", "coalesced")
	m.badRequest = requests.With("any", "bad_request")
	m.notFound = requests.With("any", "not_found")
	m.rejected = requests.With("any", "draining")

	m.renderSeconds = reg.Histogram("donorsense_serve_render_seconds",
		"Latency of cold parameterized renders (cache hits never observe).",
		obs.DefBuckets)
	reg.GaugeFunc("donorsense_serve_cache_size",
		"Rendered bodies cached in the currently served snapshot.",
		func() float64 { return float64(p.CacheSize()) })
	return m
}
