package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"donorsense/internal/geo"
	"donorsense/internal/organ"
)

// Preallocated header values, assigned directly into the header map
// under their canonical keys so the hot path never calls Header().Set
// (which canonicalizes and allocates a fresh []string per request).
// Handlers only read these shared slices.
var (
	contentTypeHdr  = []string{"application/json; charset=utf-8"}
	cacheControlHdr = []string{"no-cache"}
	retryAfterHdr   = []string{"1"}
)

// Handler is the query-API HTTP handler. The unparameterized hot path
// is: inflight++, one atomic snapshot load, an array-indexed body
// lookup, an ETag compare, and a single Write — zero heap allocations
// and zero lock acquisitions. Everything slower (parameterized renders,
// error bodies) happens on explicitly cold paths.
type Handler struct {
	p *Publisher
	m *Metrics

	// testHook, when set, runs after the snapshot pointer load and
	// before the response is written — a seam for deterministic drain
	// and publish-race tests. Never set in production.
	testHook func()
}

// NewHandler returns a handler over the publisher's snapshots.
func NewHandler(p *Publisher) *Handler { return &Handler{p: p} }

// SetMetrics attaches pre-resolved obs counters. Call before serving;
// the handler works (counting only its own atomics) without one.
func (h *Handler) SetMetrics(m *Metrics) { h.m = m }

func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p := h.p
	p.inflight.Add(1)
	defer p.inflight.Add(-1)

	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}

	if p.draining.Load() {
		// Drain mode: constant-time rejection so http.Server.Shutdown's
		// in-flight accounting empties quickly while keep-alive clients
		// learn to back off.
		p.rejected.Add(1)
		if m := h.m; m != nil {
			m.rejected.Inc()
		}
		hdr := w.Header()
		hdr["Retry-After"] = retryAfterHdr
		w.WriteHeader(http.StatusServiceUnavailable)
		return
	}
	snap := p.cur.Load()
	if h.testHook != nil {
		// Runs after the drain check and snapshot load, before the write:
		// the deterministic seam for drain and publish-race tests.
		h.testHook()
	}
	if snap == nil {
		p.notFound.Add(1)
		if m := h.m; m != nil {
			m.notFound.Inc()
		}
		http.Error(w, "no snapshot published yet", http.StatusNotFound)
		return
	}
	ep := endpointOf(r.URL.Path)
	if ep < 0 {
		p.notFound.Add(1)
		if m := h.m; m != nil {
			m.notFound.Inc()
		}
		http.Error(w, "unknown endpoint (see /api/ for the index)", http.StatusNotFound)
		return
	}
	if r.URL.RawQuery == "" {
		h.reply(w, r, snap, ep, snap.fixed[ep])
		return
	}
	h.serveParam(w, r, snap, ep)
}

// reply writes body (or a 304) with the snapshot's ETag. This is the
// terminal step of every 200/304 response, hot or cold.
func (h *Handler) reply(w http.ResponseWriter, r *http.Request, snap *Snapshot, ep endpoint, body []byte) {
	hdr := w.Header()
	hdr["Etag"] = snap.etagHdr
	hdr["Cache-Control"] = cacheControlHdr
	if inm := r.Header.Get("If-None-Match"); inm != "" && inm == snap.etag {
		h.p.notModified.Add(1)
		if m := h.m; m != nil {
			m.notModified[ep].Inc()
		}
		w.WriteHeader(http.StatusNotModified)
		return
	}
	hdr["Content-Type"] = contentTypeHdr
	h.p.hits.Add(1)
	if m := h.m; m != nil {
		m.hit[ep].Inc()
	}
	_, _ = w.Write(body)
}

// serveParam answers a parameterized request: cached-body fast path,
// then a singleflight-coalesced render into the snapshot's bounded
// cache.
func (h *Handler) serveParam(w http.ResponseWriter, r *http.Request, snap *Snapshot, ep endpoint) {
	raw := r.URL.RawQuery
	if body, ok := snap.cache.get(ep, raw); ok {
		h.reply(w, r, snap, ep, body)
		return
	}

	start := time.Now()
	body, shared, err := snap.cache.do(ep, raw, func() ([]byte, error) {
		return snap.renderParam(ep, raw)
	})
	if err != nil {
		status, msg := http.StatusBadRequest, err.Error()
		var ae *apiError
		if asAPIError(err, &ae) {
			status = ae.status
		}
		switch status {
		case http.StatusNotFound:
			h.p.notFound.Add(1)
			if m := h.m; m != nil {
				m.notFound.Inc()
			}
		default:
			h.p.badRequest.Add(1)
			if m := h.m; m != nil {
				m.badRequest.Inc()
			}
		}
		http.Error(w, msg, status)
		return
	}
	if shared {
		h.p.coalesced.Add(1)
		if m := h.m; m != nil {
			m.coalesced.Inc()
		}
	} else {
		h.p.renders.Add(1)
		if m := h.m; m != nil {
			m.render[ep].Inc()
			m.renderSeconds.Since(start)
		}
	}
	h.reply(w, r, snap, ep, body)
}

// apiError is a render failure with an HTTP status; anything else
// defaults to 400.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

// asAPIError is errors.As specialized to *apiError without reflection;
// render errors are never wrapped.
func asAPIError(err error, target **apiError) bool {
	ae, ok := err.(*apiError)
	if ok {
		*target = ae
	}
	return ok
}

func badParam(format string, args ...any) error {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func notFoundParam(format string, args ...any) error {
	return &apiError{status: http.StatusNotFound, msg: fmt.Sprintf(format, args...)}
}

// renderParam renders a parameterized document. Runs at most once per
// (snapshot, raw query) thanks to the singleflight cache; correctness,
// not allocation count, is the concern here.
func (s *Snapshot) renderParam(ep endpoint, raw string) ([]byte, error) {
	q, err := url.ParseQuery(raw)
	if err != nil {
		return nil, badParam("malformed query: %v", err)
	}
	allowed, ok := endpointParams[ep]
	if !ok {
		return nil, badParam("endpoint %s takes no parameters", endpointPaths[ep])
	}
	for key := range q {
		if !strings.Contains(allowed, ","+key+",") {
			return nil, badParam("unknown parameter %q (allowed: %s)", key, strings.Trim(allowed, ","))
		}
	}

	var doc any
	switch ep {
	case epStates:
		code := normalizeState(q.Get("state"))
		if code == "" {
			return nil, badParam("state parameter is empty")
		}
		sd := s.stateByCode(code)
		if sd == nil {
			if geo.StateIndex(code) < 0 {
				return nil, notFoundParam("unknown state %q", code)
			}
			return nil, notFoundParam("state %q has no users in this snapshot", code)
		}
		doc = stateDetailJSON{
			docMeta:   s.meta(),
			stateJSON: sd.toJSON(),
			RR:        sd.rrCells(-1, true),
		}
	case epOrgans:
		o, ok := organ.Parse(q.Get("organ"))
		if !ok {
			return nil, notFoundParam("unknown organ %q (one of %s)",
				q.Get("organ"), strings.Join(organ.Names(), ", "))
		}
		od := &s.organs[o.Index()]
		detail := organDetailJSON{
			docMeta: s.meta(),
			organJSON: organJSON{
				Organ: o.String(), Users: od.users,
				GroupSize: od.groupSize, Signature: sigMap(od.sig[:]),
			},
			StatesHighlighting: []string{},
		}
		for i := range s.states {
			if s.states[i].rr[o.Index()].significant {
				detail.StatesHighlighting = append(detail.StatesHighlighting, s.states[i].code)
			}
		}
		doc = detail
	case epRR:
		o := organ.Organ(-1)
		if v := q.Get("organ"); v != "" {
			var ok bool
			if o, ok = organ.Parse(v); !ok {
				return nil, notFoundParam("unknown organ %q", v)
			}
		}
		state := ""
		if v := q.Get("state"); v != "" {
			state = normalizeState(v)
			if geo.StateIndex(state) < 0 {
				return nil, notFoundParam("unknown state %q", state)
			}
		}
		doc = s.rrDoc(o, state)
	case epTop:
		k, err := strconv.Atoi(q.Get("k"))
		if err != nil || k < 0 {
			return nil, badParam("k must be a non-negative integer, got %q", q.Get("k"))
		}
		doc = s.topDoc(k)
	default:
		return nil, badParam("endpoint %s takes no parameters", endpointPaths[ep])
	}

	b, err := json.Marshal(doc)
	if err != nil {
		return nil, fmt.Errorf("render %s?%s: %w", endpointPaths[ep], raw, err)
	}
	return append(b, '\n'), nil
}

// endpointParams lists the accepted query keys per endpoint, comma-
// delimited with sentinels for exact-token matching.
var endpointParams = map[endpoint]string{
	epStates: ",state,",
	epOrgans: ",organ,",
	epRR:     ",state,organ,",
	epTop:    ",k,",
}
