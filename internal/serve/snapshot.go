// Package serve is the read side of the live collector: an HTTP/JSON
// query API over the incremental analysis engine's current state.
//
// The design is RCU-style snapshot publication. After every successful
// Engine.Refresh the owning goroutine builds an immutable Snapshot — a
// deep copy of the report slices plus pre-rendered JSON bodies and a
// strong ETag derived from the publish sequence and refresh epoch — and
// swaps it in through one atomic pointer. The request hot path is a
// pointer load, an ETag compare, and a cached []byte write: no locks, no
// allocations, and no interaction with the ingest fold or the next
// Refresh. Parameterized requests render once per (snapshot, query)
// through a singleflight coalescer into a bounded per-snapshot cache, so
// a stampede on a cold key costs one render. See DESIGN.md §15.
package serve

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"donorsense/internal/geo"
	"donorsense/internal/organ"
	"donorsense/internal/report"
)

// endpoint enumerates the API routes; fixed bodies and pre-resolved
// metrics are arrays indexed by it so the hot path never hashes.
type endpoint int

const (
	epIndex endpoint = iota
	epEpoch
	epStats
	epStates
	epOrgans
	epRR
	epTop
	epClusters
	numEndpoints
)

// endpointNames are the metric/status labels, index-aligned with the
// endpoint constants.
var endpointNames = [numEndpoints]string{
	"index", "epoch", "stats", "states", "organs", "rr", "top", "clusters",
}

// endpointPaths are the served routes, index-aligned.
var endpointPaths = [numEndpoints]string{
	"/api/", "/api/epoch", "/api/stats", "/api/states", "/api/organs",
	"/api/rr", "/api/top", "/api/clusters",
}

// endpointOf resolves a request path without allocating.
func endpointOf(path string) endpoint {
	switch path {
	case "/api/", "/api":
		return epIndex
	case "/api/epoch":
		return epEpoch
	case "/api/stats":
		return epStats
	case "/api/states":
		return epStates
	case "/api/organs":
		return epOrgans
	case "/api/rr":
		return epRR
	case "/api/top":
		return epTop
	case "/api/clusters":
		return epClusters
	}
	return -1
}

// fixedTopK is how many top users the unparameterized /api/top body
// carries; ?k= renders any other cut from the retained list.
const fixedTopK = 10

// Meta carries the publish-time context that is not derivable from the
// *report.Analysis itself.
type Meta struct {
	// Epoch is the engine's attention epoch for this analysis.
	Epoch uint64
	// Refreshes counts completed engine refreshes.
	Refreshes uint64
	// Built stamps the snapshot (defaults to time.Now).
	Built time.Time
	// Top is the ranked top-mentioner list (report.TopMentioners); the
	// snapshot retains it for /api/top?k= cuts.
	Top []report.TopUser
}

// Snapshot is one immutable, fully self-contained view of the analysis:
// deep copies of every served slice, pre-rendered fixed bodies, and a
// bounded render cache for parameterized requests. Nothing in it aliases
// engine- or dataset-owned memory, so readers can hold it across any
// number of concurrent Refresh/Publish cycles.
type Snapshot struct {
	Seq       uint64
	Epoch     uint64
	Built     time.Time
	Users     int
	Refreshes uint64

	etag    string
	etagHdr []string // preallocated {etag} value for direct header assignment

	fixed [numEndpoints][]byte

	states   []stateData
	stateIdx map[string]int
	organs   [organ.Count]organData
	top      []topData
	clusters *clustersData

	cache renderCache
}

// ETag returns the snapshot's strong entity tag (quoted, per RFC 9110).
func (s *Snapshot) ETag() string { return s.etag }

type rrCell struct {
	defined     bool // point estimate and CI are directly computable
	rr, lo, hi  float64
	significant bool
	continuity  bool // values are Haldane–Anscombe continuity-corrected
}

type stateData struct {
	code   string
	users  int
	sig    [organ.Count]float64
	rr     [organ.Count]rrCell
	winner int8 // arg-max organ index of the winner-takes-all baseline; -1 none
}

type organData struct {
	users     int // users mentioning the organ at all (Figure 2a)
	groupSize int // users whose primary organ it is (Figure 3)
	sig       [organ.Count]float64
}

type topData struct {
	report.TopUser
	cluster int // K-Means cluster of the user, -1 when unclustered
}

type clustersData struct {
	k          int
	inertia    float64
	iterations int
	sizes      []int
	centroids  [][]float64
}

// BuildSnapshot deep-copies the served slices out of the analysis and
// pre-renders every fixed endpoint. It runs on the publishing goroutine
// while the dataset is quiescent (right after Engine.Refresh), which is
// the only moment reading the live Analysis is safe; everything after
// returns is immutable.
func BuildSnapshot(a *report.Analysis, meta Meta, seq uint64) (*Snapshot, error) {
	if a == nil {
		return nil, fmt.Errorf("serve: nil analysis")
	}
	built := meta.Built
	if built.IsZero() {
		built = time.Now()
	}
	s := &Snapshot{
		Seq:       seq,
		Epoch:     meta.Epoch,
		Built:     built.UTC(),
		Users:     a.Stats.Users,
		Refreshes: meta.Refreshes,
		etag:      fmt.Sprintf("%q", fmt.Sprintf("s%d-e%d", seq, meta.Epoch)),
		stateIdx:  make(map[string]int),
		cache:     newRenderCache(defaultCacheLimit),
	}
	s.etagHdr = []string{s.etag}

	s.copyStates(a)
	s.copyOrgans(a)
	s.copyClusters(a)
	s.copyTop(a, meta.Top)

	if err := s.renderFixed(a); err != nil {
		return nil, err
	}
	return s, nil
}

// copyStates captures the region characterization, RR analysis, and
// winner-takes-all baseline, keeping only states with users.
func (s *Snapshot) copyStates(a *report.Analysis) {
	if a.Regions == nil {
		return
	}
	for i, code := range a.Regions.StateCodes {
		if i >= len(a.Regions.GroupSizes) || a.Regions.GroupSizes[i] == 0 {
			continue
		}
		sd := stateData{code: code, users: a.Regions.GroupSizes[i], winner: -1}
		copy(sd.sig[:], a.Regions.K.RowView(i))
		if a.Highlight != nil && i < len(a.Highlight.Risks) {
			for j, r := range a.Highlight.Risks[i] {
				cell := &sd.rr[j]
				switch {
				case r.Defined:
					cell.defined = true
					cell.rr, cell.lo, cell.hi = r.RR.RR, r.RR.Lower, r.RR.Upper
					cell.significant = r.Highlighted()
				case r.ContinuityDefined:
					cell.defined = true
					cell.continuity = true
					cell.rr, cell.lo, cell.hi = r.Continuity.RR, r.Continuity.Lower, r.Continuity.Upper
				}
			}
		}
		if a.Baseline != nil {
			if o, ok := a.Baseline[code]; ok {
				sd.winner = int8(o.Index())
			}
		}
		s.stateIdx[code] = len(s.states)
		s.states = append(s.states, sd)
	}
}

// copyOrgans captures popularity and the organ-perspective signatures.
func (s *Snapshot) copyOrgans(a *report.Analysis) {
	for _, o := range organ.All() {
		i := o.Index()
		od := organData{users: a.Popularity[i]}
		if a.Organs != nil {
			od.groupSize = a.Organs.GroupSizes[i]
			copy(od.sig[:], a.Organs.K.RowView(i))
		}
		s.organs[i] = od
	}
}

// copyClusters captures the Figure 7 K-Means summary (centroids, sizes).
func (s *Snapshot) copyClusters(a *report.Analysis) {
	c := a.Clusters
	if c == nil {
		return
	}
	cd := &clustersData{
		k:          c.K,
		inertia:    c.Inertia,
		iterations: c.Iterations,
		sizes:      append([]int(nil), c.Sizes...),
		centroids:  make([][]float64, len(c.Centroids)),
	}
	for i, cent := range c.Centroids {
		cd.centroids[i] = append([]float64(nil), cent...)
	}
	s.clusters = cd
}

// copyTop joins the ranked top-mentioner list with cluster assignments.
func (s *Snapshot) copyTop(a *report.Analysis, top []report.TopUser) {
	if len(top) == 0 {
		return
	}
	s.top = make([]topData, len(top))
	for i, u := range top {
		td := topData{TopUser: u, cluster: -1}
		if a.Clusters != nil && a.Attention != nil {
			if row := a.Attention.RowOf(u.ID); row >= 0 && row < len(a.Clusters.Labels) {
				td.cluster = a.Clusters.Labels[row]
			}
		}
		s.top[i] = td
	}
}

// ---- JSON documents ----

// docMeta heads every response body so clients can correlate payloads
// with the ETag/epoch they observed.
type docMeta struct {
	Seq   uint64    `json:"seq"`
	Epoch uint64    `json:"epoch"`
	ETag  string    `json:"etag"`
	Built time.Time `json:"built"`
}

func (s *Snapshot) meta() docMeta {
	return docMeta{Seq: s.Seq, Epoch: s.Epoch, ETag: s.etag, Built: s.Built}
}

type tableJSON struct {
	Start            string  `json:"start"`
	End              string  `json:"end"`
	Days             int     `json:"days"`
	TweetsUS         int     `json:"tweets_us"`
	TweetsTotal      int     `json:"tweets_total"`
	Users            int     `json:"users"`
	AvgTweetsPerDay  float64 `json:"avg_tweets_per_day"`
	AvgTweetsPerUser float64 `json:"avg_tweets_per_user"`
	OrgansPerTweet   float64 `json:"organs_per_tweet"`
	OrgansPerUser    float64 `json:"organs_per_user"`
	GeoTagRate       float64 `json:"geo_tag_rate"`
}

type rrCellJSON struct {
	State       string  `json:"state"`
	Organ       string  `json:"organ"`
	RR          float64 `json:"rr"`
	Lower       float64 `json:"lower"`
	Upper       float64 `json:"upper"`
	Significant bool    `json:"significant"`
	Continuity  bool    `json:"continuity,omitempty"`
}

type stateJSON struct {
	Code        string             `json:"code"`
	Users       int                `json:"users"`
	Signature   map[string]float64 `json:"signature"`
	Winner      string             `json:"winner,omitempty"`
	Highlighted []string           `json:"highlighted,omitempty"`
}

type stateDetailJSON struct {
	docMeta
	stateJSON
	RR []rrCellJSON `json:"rr"`
}

type organJSON struct {
	Organ     string             `json:"organ"`
	Users     int                `json:"users"`
	GroupSize int                `json:"group_size"`
	Signature map[string]float64 `json:"signature"`
}

type organDetailJSON struct {
	docMeta
	organJSON
	StatesHighlighting []string `json:"states_highlighting"`
}

type topUserJSON struct {
	ID       int64            `json:"id"`
	State    string           `json:"state,omitempty"`
	Total    int64            `json:"total"`
	Mentions map[string]int32 `json:"mentions"`
	Primary  string           `json:"primary"`
	Cluster  *int             `json:"cluster,omitempty"`
}

type topDocJSON struct {
	docMeta
	K       int           `json:"k"`
	Tracked int           `json:"tracked"`
	Users   []topUserJSON `json:"users"`
}

type clusterJSON struct {
	ID       int                `json:"id"`
	Size     int                `json:"size"`
	Share    float64            `json:"share"`
	Centroid map[string]float64 `json:"centroid"`
}

// sigMap renders a signature row as an organ-keyed map (encoding/json
// sorts the keys, so bodies are deterministic).
func sigMap(sig []float64) map[string]float64 {
	m := make(map[string]float64, len(sig))
	for i, v := range sig {
		m[organ.Organ(i).String()] = v
	}
	return m
}

func (sd *stateData) toJSON() stateJSON {
	sj := stateJSON{Code: sd.code, Users: sd.users, Signature: sigMap(sd.sig[:])}
	if sd.winner >= 0 {
		sj.Winner = organ.Organ(sd.winner).String()
	}
	for j := range sd.rr {
		if sd.rr[j].significant {
			sj.Highlighted = append(sj.Highlighted, organ.Organ(j).String())
		}
	}
	return sj
}

func (sd *stateData) rrCells(only organ.Organ, all bool) []rrCellJSON {
	var out []rrCellJSON
	for j := range sd.rr {
		c := &sd.rr[j]
		if !c.defined {
			continue
		}
		if !all && organ.Organ(j) != only {
			continue
		}
		out = append(out, rrCellJSON{
			State: sd.code, Organ: organ.Organ(j).String(),
			RR: c.rr, Lower: c.lo, Upper: c.hi,
			Significant: c.significant, Continuity: c.continuity,
		})
	}
	return out
}

// renderFixed marshals every fixed endpoint body once, at build time.
func (s *Snapshot) renderFixed(a *report.Analysis) error {
	render := func(ep endpoint, doc any) error {
		b, err := json.Marshal(doc)
		if err != nil {
			return fmt.Errorf("serve: render %s: %w", endpointNames[ep], err)
		}
		s.fixed[ep] = append(b, '\n')
		return nil
	}

	paths := make([]string, 0, numEndpoints-1)
	for ep := epEpoch; ep < numEndpoints; ep++ {
		paths = append(paths, endpointPaths[ep])
	}
	if err := render(epIndex, struct {
		docMeta
		Endpoints []string `json:"endpoints"`
	}{s.meta(), paths}); err != nil {
		return err
	}

	if err := render(epEpoch, struct {
		docMeta
		Users     int    `json:"users"`
		Refreshes uint64 `json:"refreshes"`
	}{s.meta(), s.Users, s.Refreshes}); err != nil {
		return err
	}

	popularity := make(map[string]int, organ.Count)
	for i, c := range a.Popularity {
		popularity[organ.Organ(i).String()] = c
	}
	if err := render(epStats, struct {
		docMeta
		Table      tableJSON      `json:"table"`
		Popularity map[string]int `json:"popularity"`
		Spearman   struct {
			R float64 `json:"r"`
			P float64 `json:"p"`
			N int     `json:"n"`
		} `json:"spearman"`
		MultiTweets [organ.Count]int `json:"multi_organ_tweets"`
		MultiUsers  [organ.Count]int `json:"multi_organ_users"`
	}{
		docMeta: s.meta(),
		Table: tableJSON{
			Start:            a.Stats.Start.UTC().Format(time.RFC3339),
			End:              a.Stats.End.UTC().Format(time.RFC3339),
			Days:             a.Stats.Days,
			TweetsUS:         a.Stats.TweetsCollected,
			TweetsTotal:      a.Stats.TotalCollected,
			Users:            a.Stats.Users,
			AvgTweetsPerDay:  a.Stats.AvgTweetsPerDay,
			AvgTweetsPerUser: a.Stats.AvgTweetsPerUser,
			OrgansPerTweet:   a.Stats.OrgansPerTweet,
			OrgansPerUser:    a.Stats.OrgansPerUser,
			GeoTagRate:       a.Stats.GeoTagRate,
		},
		Popularity: popularity,
		Spearman: struct {
			R float64 `json:"r"`
			P float64 `json:"p"`
			N int     `json:"n"`
		}{a.Spearman.R, a.Spearman.P, a.Spearman.N},
		MultiTweets: a.MultiTweets,
		MultiUsers:  a.MultiUsers,
	}); err != nil {
		return err
	}

	states := make([]stateJSON, len(s.states))
	for i := range s.states {
		states[i] = s.states[i].toJSON()
	}
	if err := render(epStates, struct {
		docMeta
		States []stateJSON `json:"states"`
	}{s.meta(), states}); err != nil {
		return err
	}

	organs := make([]organJSON, organ.Count)
	for _, o := range organ.All() {
		od := &s.organs[o.Index()]
		organs[o.Index()] = organJSON{
			Organ: o.String(), Users: od.users,
			GroupSize: od.groupSize, Signature: sigMap(od.sig[:]),
		}
	}
	if err := render(epOrgans, struct {
		docMeta
		Organs []organJSON `json:"organs"`
	}{s.meta(), organs}); err != nil {
		return err
	}

	if err := render(epRR, s.rrDoc(-1, "")); err != nil {
		return err
	}
	if err := render(epTop, s.topDoc(fixedTopK)); err != nil {
		return err
	}

	clusters := struct {
		docMeta
		K          int           `json:"k"`
		Inertia    float64       `json:"inertia"`
		Iterations int           `json:"iterations"`
		Clusters   []clusterJSON `json:"clusters"`
	}{docMeta: s.meta()}
	if c := s.clusters; c != nil {
		clusters.K, clusters.Inertia, clusters.Iterations = c.k, c.inertia, c.iterations
		for i, size := range c.sizes {
			share := 0.0
			if s.Users > 0 {
				share = float64(size) / float64(s.Users)
			}
			clusters.Clusters = append(clusters.Clusters, clusterJSON{
				ID: i, Size: size, Share: share, Centroid: sigMap(c.centroids[i]),
			})
		}
	}
	return render(epClusters, clusters)
}

// rrDoc builds the RR cell list, optionally filtered by organ (o >= 0)
// and/or state code (non-empty, canonical upper case).
func (s *Snapshot) rrDoc(o organ.Organ, state string) any {
	var cells []rrCellJSON
	for i := range s.states {
		sd := &s.states[i]
		if state != "" && sd.code != state {
			continue
		}
		cells = append(cells, sd.rrCells(o, o < 0)...)
	}
	if cells == nil {
		cells = []rrCellJSON{}
	}
	return struct {
		docMeta
		Cells []rrCellJSON `json:"cells"`
	}{s.meta(), cells}
}

// topDoc builds the top-k document; k is clamped to the retained list.
func (s *Snapshot) topDoc(k int) topDocJSON {
	if k > len(s.top) {
		k = len(s.top)
	}
	doc := topDocJSON{docMeta: s.meta(), K: k, Tracked: len(s.top), Users: make([]topUserJSON, 0, k)}
	for i := 0; i < k; i++ {
		td := &s.top[i]
		uj := topUserJSON{
			ID: td.ID, State: td.State, Total: td.Total,
			Mentions: make(map[string]int32, organ.Count),
			Primary:  td.Primary().String(),
		}
		for j, m := range td.Mentions {
			if m > 0 {
				uj.Mentions[organ.Organ(j).String()] = m
			}
		}
		if td.cluster >= 0 {
			c := td.cluster
			uj.Cluster = &c
		}
		doc.Users = append(doc.Users, uj)
	}
	return doc
}

// normalizeState canonicalizes a ?state= value; geo codes are upper-case
// USPS abbreviations.
func normalizeState(v string) string { return strings.ToUpper(strings.TrimSpace(v)) }

// stateByCode returns the retained state row, or nil when the code has
// no users in this snapshot (or is not a state at all).
func (s *Snapshot) stateByCode(code string) *stateData {
	if geo.StateIndex(code) < 0 {
		return nil
	}
	i, ok := s.stateIdx[code]
	if !ok {
		return nil
	}
	return &s.states[i]
}
