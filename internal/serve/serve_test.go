package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"donorsense/internal/obs"
	"donorsense/internal/pipeline"
	"donorsense/internal/report"
)

// testPublisher builds a publisher with one published snapshot over a
// synthetic dataset.
func testPublisher(t testing.TB, users int, seed uint64) (*Publisher, *Snapshot) {
	t.Helper()
	d := pipeline.SynthDataset(users, seed)
	cfg := report.DefaultAnalysisConfig()
	cfg.KUsers = 8
	cfg.SweepKs = nil
	cfg.SilhouetteSample = 0
	cfg.Workers = 2
	e := report.NewEngine(d, cfg)
	a, err := e.Refresh()
	if err != nil {
		t.Fatalf("refresh: %v", err)
	}
	p := NewPublisher()
	snap, err := p.Publish(a, Meta{
		Epoch:     e.Epoch(),
		Refreshes: e.Refreshes(),
		Top:       report.TopMentioners(d, 100),
	})
	if err != nil {
		t.Fatalf("publish: %v", err)
	}
	return p, snap
}

func get(t testing.TB, h http.Handler, path string, hdr ...string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	for i := 0; i+1 < len(hdr); i += 2 {
		req.Header.Set(hdr[i], hdr[i+1])
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// decodeMeta pulls the seq/epoch/etag envelope out of a response body.
func decodeMeta(t testing.TB, body []byte) docMeta {
	t.Helper()
	var m docMeta
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("body not JSON: %v\n%s", err, body)
	}
	return m
}

func TestFixedEndpointsServeCachedBodies(t *testing.T) {
	p, snap := testPublisher(t, 500, 1)
	h := NewHandler(p)
	for ep := endpoint(0); ep < numEndpoints; ep++ {
		rec := get(t, h, endpointPaths[ep])
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d", endpointPaths[ep], rec.Code)
		}
		if got := rec.Header().Get("Etag"); got != snap.ETag() {
			t.Errorf("%s: ETag %q, want %q", endpointPaths[ep], got, snap.ETag())
		}
		if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("%s: Content-Type %q", endpointPaths[ep], ct)
		}
		m := decodeMeta(t, rec.Body.Bytes())
		if m.Seq != snap.Seq || m.Epoch != snap.Epoch || m.ETag != snap.ETag() {
			t.Errorf("%s: body meta %+v does not match snapshot seq=%d epoch=%d",
				endpointPaths[ep], m, snap.Seq, snap.Epoch)
		}
	}
	st := p.Stats()
	if st.Hits != uint64(numEndpoints) || st.Renders != 0 {
		t.Errorf("stats after fixed GETs: %+v", st)
	}
}

func TestIfNoneMatch(t *testing.T) {
	p, snap := testPublisher(t, 300, 2)
	h := NewHandler(p)

	rec := get(t, h, "/api/stats", "If-None-Match", snap.ETag())
	if rec.Code != http.StatusNotModified {
		t.Fatalf("matching If-None-Match: status %d, want 304", rec.Code)
	}
	if rec.Body.Len() != 0 {
		t.Fatalf("304 wrote %d body bytes", rec.Body.Len())
	}
	if got := rec.Header().Get("Etag"); got != snap.ETag() {
		t.Errorf("304 ETag %q, want %q", got, snap.ETag())
	}

	rec = get(t, h, "/api/stats", "If-None-Match", `"stale"`)
	if rec.Code != http.StatusOK || rec.Body.Len() == 0 {
		t.Fatalf("stale If-None-Match: status %d, body %d bytes", rec.Code, rec.Body.Len())
	}
	if st := p.Stats(); st.NotModified != 1 {
		t.Errorf("not_modified = %d, want 1", st.NotModified)
	}

	// Parameterized requests revalidate too.
	rec = get(t, h, "/api/top?k=5", "If-None-Match", snap.ETag())
	if rec.Code != http.StatusNotModified {
		t.Fatalf("parameterized If-None-Match: status %d, want 304", rec.Code)
	}
}

func TestGatingBeforeFirstPublish(t *testing.T) {
	h := NewHandler(NewPublisher())
	if rec := get(t, h, "/api/stats"); rec.Code != http.StatusNotFound {
		t.Fatalf("pre-publish GET: status %d, want 404", rec.Code)
	}
}

func TestUnknownRouteAndMethod(t *testing.T) {
	p, _ := testPublisher(t, 200, 3)
	h := NewHandler(p)
	if rec := get(t, h, "/api/nope"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown route: status %d, want 404", rec.Code)
	}
	req := httptest.NewRequest(http.MethodPost, "/api/stats", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST: status %d, want 405", rec.Code)
	}
}

func TestParameterizedRenders(t *testing.T) {
	p, snap := testPublisher(t, 800, 4)
	h := NewHandler(p)

	// ?k= renders, is cached, and the repeat is a cache hit.
	rec := get(t, h, "/api/top?k=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("top?k=3: status %d: %s", rec.Code, rec.Body.String())
	}
	var topDoc struct {
		K     int `json:"k"`
		Users []struct {
			ID    int64 `json:"id"`
			Total int64 `json:"total"`
		} `json:"users"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &topDoc); err != nil {
		t.Fatal(err)
	}
	if topDoc.K != 3 || len(topDoc.Users) != 3 {
		t.Fatalf("top?k=3 returned k=%d with %d users", topDoc.K, len(topDoc.Users))
	}
	for i := 1; i < len(topDoc.Users); i++ {
		if topDoc.Users[i].Total > topDoc.Users[i-1].Total {
			t.Fatalf("top users out of order: %+v", topDoc.Users)
		}
	}
	first := rec.Body.String()
	if rec = get(t, h, "/api/top?k=3"); rec.Body.String() != first {
		t.Fatal("repeat parameterized GET returned a different body")
	}
	st := p.Stats()
	if st.Renders != 1 {
		t.Fatalf("renders = %d after two identical GETs, want 1", st.Renders)
	}
	if st.CacheSize != 1 {
		t.Fatalf("cache size = %d, want 1", st.CacheSize)
	}

	// A state detail agrees with the states list.
	var list struct {
		States []struct {
			Code  string `json:"code"`
			Users int    `json:"users"`
		} `json:"states"`
	}
	if err := json.Unmarshal(snap.fixed[epStates], &list); err != nil {
		t.Fatal(err)
	}
	if len(list.States) == 0 {
		t.Fatal("no states in snapshot")
	}
	code := list.States[0].Code
	rec = get(t, h, "/api/states?state="+strings.ToLower(code))
	if rec.Code != http.StatusOK {
		t.Fatalf("states?state=%s: status %d: %s", code, rec.Code, rec.Body.String())
	}
	var detail struct {
		Code  string `json:"code"`
		Users int    `json:"users"`
		RR    []struct {
			Organ string `json:"organ"`
		} `json:"rr"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &detail); err != nil {
		t.Fatal(err)
	}
	if detail.Code != code || detail.Users != list.States[0].Users {
		t.Fatalf("state detail %+v does not match list entry %+v", detail, list.States[0])
	}

	// Organ details resolve case-insensitively; RR filters are subsets.
	if rec = get(t, h, "/api/organs?organ=Heart"); rec.Code != http.StatusOK {
		t.Fatalf("organs?organ=Heart: status %d", rec.Code)
	}
	var rrAll, rrHeart struct {
		Cells []struct {
			State string `json:"state"`
			Organ string `json:"organ"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(snap.fixed[epRR], &rrAll); err != nil {
		t.Fatal(err)
	}
	rec = get(t, h, "/api/rr?organ=heart")
	if err := json.Unmarshal(rec.Body.Bytes(), &rrHeart); err != nil {
		t.Fatal(err)
	}
	if len(rrHeart.Cells) == 0 || len(rrHeart.Cells) >= len(rrAll.Cells) {
		t.Fatalf("rr?organ=heart has %d cells vs %d total", len(rrHeart.Cells), len(rrAll.Cells))
	}
	for _, c := range rrHeart.Cells {
		if c.Organ != "heart" {
			t.Fatalf("rr?organ=heart leaked %+v", c)
		}
	}
}

func TestParameterErrors(t *testing.T) {
	p, _ := testPublisher(t, 300, 5)
	h := NewHandler(p)
	cases := []struct {
		path string
		want int
	}{
		{"/api/top?k=-1", http.StatusBadRequest},
		{"/api/top?k=abc", http.StatusBadRequest},
		{"/api/top?j=3", http.StatusBadRequest},
		{"/api/states?state=ZZ", http.StatusNotFound},
		{"/api/states?state=", http.StatusBadRequest},
		{"/api/organs?organ=spleen", http.StatusNotFound},
		{"/api/rr?organ=spleen", http.StatusNotFound},
		{"/api/rr?state=ZZ", http.StatusNotFound},
		{"/api/epoch?x=1", http.StatusBadRequest},
		{"/api/clusters?k=2", http.StatusBadRequest},
	}
	for _, c := range cases {
		if rec := get(t, h, c.path); rec.Code != c.want {
			t.Errorf("%s: status %d, want %d", c.path, rec.Code, c.want)
		}
	}
	// Errors are never pinned into the render cache.
	if st := p.Stats(); st.CacheSize != 0 {
		t.Errorf("cache size %d after error-only traffic, want 0", st.CacheSize)
	}
}

func TestRenderCacheBounded(t *testing.T) {
	c := newRenderCache(2)
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k=%d", i)
		body, _, err := c.do(epTop, key, func() ([]byte, error) {
			return []byte(key), nil
		})
		if err != nil || string(body) != key {
			t.Fatalf("do(%s) = %q, %v", key, body, err)
		}
	}
	if got := c.cached(); got != 2 {
		t.Fatalf("cache size %d, want bound 2", got)
	}
	// Overflow keys still render correctly, they are just not stored.
	if _, ok := c.get(epTop, "k=4"); ok {
		t.Fatal("over-bound key was cached")
	}
	if _, ok := c.get(epTop, "k=0"); !ok {
		t.Fatal("in-bound key was evicted")
	}
}

func TestSingleflightCoalescesStampede(t *testing.T) {
	c := newRenderCache(8)
	const readers = 16
	var executions atomic.Int32
	release := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	shared := make([]bool, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, sh, err := c.do(epTop, "k=7", func() ([]byte, error) {
				executions.Add(1)
				close(started)
				<-release
				return []byte("body"), nil
			})
			if err != nil || string(body) != "body" {
				t.Errorf("reader %d: %q, %v", i, body, err)
			}
			shared[i] = sh
		}(i)
	}
	<-started
	// All other readers are either queued on the flight or yet to arrive;
	// give them a moment to pile up, then release the one render.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := executions.Load(); got != 1 {
		t.Fatalf("render executed %d times for %d concurrent readers", got, readers)
	}
	nonShared := 0
	for _, sh := range shared {
		if !sh {
			nonShared++
		}
	}
	if nonShared != 1 {
		t.Fatalf("%d readers claim the non-shared render, want exactly 1", nonShared)
	}
}

func TestDrainLifecycle(t *testing.T) {
	p, _ := testPublisher(t, 200, 6)
	h := NewHandler(p)

	// A request that is past the drain check completes even though drain
	// begins mid-flight, and a request arriving after gets 503.
	var lateCode int
	h.testHook = func() {
		p.BeginDrain()
		late := NewHandler(p) // no hook: plain handler over the same publisher
		rec := get(t, late, "/api/stats")
		lateCode = rec.Code
		if ra := rec.Header().Get("Retry-After"); ra == "" {
			t.Error("503 without Retry-After")
		}
	}
	rec := get(t, h, "/api/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d, want 200", rec.Code)
	}
	if lateCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: status %d, want 503", lateCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatalf("drain with no in-flight requests: %v", err)
	}
}

func TestDrainWaitsForInflight(t *testing.T) {
	p, _ := testPublisher(t, 200, 7)
	h := NewHandler(p)
	entered := make(chan struct{})
	release := make(chan struct{})
	h.testHook = func() {
		close(entered)
		<-release
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		get(t, h, "/api/stats")
	}()
	<-entered
	p.BeginDrain()

	short, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Drain(short); err == nil {
		t.Fatal("Drain returned while a request was still in flight")
	}
	close(release)
	<-done
	long, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	if err := p.Drain(long); err != nil {
		t.Fatalf("Drain after the request finished: %v", err)
	}
}

// nullResponseWriter is a reusable ResponseWriter whose header map
// persists across requests, so AllocsPerRun measures only the handler.
type nullResponseWriter struct {
	h      http.Header
	status int
	n      int
}

func (w *nullResponseWriter) Header() http.Header { return w.h }
func (w *nullResponseWriter) Write(b []byte) (int, error) {
	w.n += len(b)
	return len(b), nil
}
func (w *nullResponseWriter) WriteHeader(code int) { w.status = code }

func TestHotPathZeroAllocs(t *testing.T) {
	p, snap := testPublisher(t, 500, 8)
	h := NewHandler(p)
	h.SetMetrics(NewMetrics(obs.NewRegistry(), p))

	w := &nullResponseWriter{h: make(http.Header)}
	req := httptest.NewRequest(http.MethodGet, "/api/stats", nil)
	h.ServeHTTP(w, req) // warm the header map
	if allocs := testing.AllocsPerRun(200, func() {
		w.n, w.status = 0, 0
		h.ServeHTTP(w, req)
	}); allocs != 0 {
		t.Errorf("cached-hit path: %.2f allocs/op, want 0", allocs)
	}

	req304 := httptest.NewRequest(http.MethodGet, "/api/stats", nil)
	req304.Header.Set("If-None-Match", snap.ETag())
	h.ServeHTTP(w, req304)
	if allocs := testing.AllocsPerRun(200, func() {
		w.n, w.status = 0, 0
		h.ServeHTTP(w, req304)
	}); allocs != 0 {
		t.Errorf("If-None-Match path: %.2f allocs/op, want 0", allocs)
	}
	if w.status != http.StatusNotModified || w.n != 0 {
		t.Errorf("304 path wrote status %d with %d bytes", w.status, w.n)
	}
}
