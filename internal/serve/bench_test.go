package serve

import (
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"donorsense/internal/obs"
	"donorsense/internal/pipeline"
	"donorsense/internal/report"
)

// benchAnalysis runs one real engine refresh over a synthetic dataset,
// returning the analysis and publish metadata so benchmarks can build
// snapshots directly.
func benchAnalysis(b *testing.B, users int, seed uint64) (*report.Analysis, Meta) {
	b.Helper()
	d := pipeline.SynthDataset(users, seed)
	cfg := report.DefaultAnalysisConfig()
	cfg.KUsers = 8
	cfg.SweepKs = nil
	cfg.SilhouetteSample = 0
	cfg.Workers = 2
	e := report.NewEngine(d, cfg)
	a, err := e.Refresh()
	if err != nil {
		b.Fatalf("refresh: %v", err)
	}
	return a, Meta{
		Epoch:     e.Epoch(),
		Refreshes: e.Refreshes(),
		Top:       report.TopMentioners(d, 100),
	}
}

// benchHandler is a fully wired handler (metrics attached, one snapshot
// published) matching the production collect -serve configuration.
func benchHandler(b *testing.B) (*Publisher, *Handler, *Snapshot) {
	b.Helper()
	p, snap := testPublisher(b, 2000, 1)
	h := NewHandler(p)
	h.SetMetrics(NewMetrics(obs.NewRegistry(), p))
	return p, h, snap
}

// BenchmarkServeCachedHit is the hot path the acceptance gate watches:
// a fixed-endpoint 200 served from the pre-rendered snapshot body.
// Must stay at 0 allocs/op.
func BenchmarkServeCachedHit(b *testing.B) {
	_, h, _ := benchHandler(b)
	w := &nullResponseWriter{h: make(http.Header)}
	req := httptest.NewRequest(http.MethodGet, "/api/stats", nil)
	h.ServeHTTP(w, req) // warm the recycled header map
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(w, req)
	}
	if w.status != 0 && w.status != http.StatusOK {
		b.Fatalf("unexpected status %d", w.status)
	}
}

// BenchmarkServeNotModified measures the revalidation answer: ETag
// compare, 304, no body. Must stay at 0 allocs/op.
func BenchmarkServeNotModified(b *testing.B) {
	_, h, snap := benchHandler(b)
	w := &nullResponseWriter{h: make(http.Header)}
	req := httptest.NewRequest(http.MethodGet, "/api/stats", nil)
	req.Header.Set("If-None-Match", snap.ETag())
	h.ServeHTTP(w, req)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(w, req)
	}
	if w.status != http.StatusNotModified {
		b.Fatalf("unexpected status %d", w.status)
	}
}

// BenchmarkServeColdParam measures a first-touch parameterized render:
// every iteration uses a never-seen query key, so the singleflight cache
// never hits and the full parse+build+marshal cost is on the clock.
func BenchmarkServeColdParam(b *testing.B) {
	_, h, _ := benchHandler(b)
	w := &nullResponseWriter{h: make(http.Header)}
	req := httptest.NewRequest(http.MethodGet, "/api/top", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.URL.RawQuery = "k=" + strconv.Itoa(i)
		h.ServeHTTP(w, req)
	}
	if w.status != 0 && w.status != http.StatusOK {
		b.Fatalf("unexpected status %d", w.status)
	}
}

// runConcurrentReaders drives RunParallel over the cached-hit path,
// recording per-request wall time and reporting the merged p99 so the
// churn and no-churn variants are directly comparable.
func runConcurrentReaders(b *testing.B, h *Handler) {
	var mu sync.Mutex
	var all []int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := &nullResponseWriter{h: make(http.Header)}
		req := httptest.NewRequest(http.MethodGet, "/api/stats", nil)
		h.ServeHTTP(w, req) // warm this goroutine's header map
		lat := make([]int64, 0, 1<<16)
		for pb.Next() {
			start := time.Now()
			h.ServeHTTP(w, req)
			lat = append(lat, int64(time.Since(start)))
		}
		mu.Lock()
		all = append(all, lat...)
		mu.Unlock()
	})
	b.StopTimer()
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	b.ReportMetric(float64(all[len(all)*99/100]), "p99-ns/op")
}

// BenchmarkServeConcurrentReaders is the quiet baseline for the churn
// comparison: many readers, no publishes.
func BenchmarkServeConcurrentReaders(b *testing.B) {
	_, h, _ := benchHandler(b)
	runConcurrentReaders(b, h)
}

// BenchmarkServeConcurrentReadersRefreshChurn runs the same reader load
// while a publisher goroutine swaps pre-built snapshots in at a hard
// 5 kHz — far above any real refresh cadence. The acceptance gate is
// p99 ≤ 1.2× the no-churn baseline: publication must not stall readers.
func BenchmarkServeConcurrentReadersRefreshChurn(b *testing.B) {
	a, meta := benchAnalysis(b, 2000, 1)
	const rotation = 8
	snaps := make([]*Snapshot, rotation)
	for i := range snaps {
		s, err := BuildSnapshot(a, meta, uint64(i+1))
		if err != nil {
			b.Fatalf("BuildSnapshot: %v", err)
		}
		snaps[i] = s
	}
	p := NewPublisher()
	p.cur.Store(snaps[0])
	h := NewHandler(p)
	h.SetMetrics(NewMetrics(obs.NewRegistry(), p))

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		tick := time.NewTicker(200 * time.Microsecond)
		defer tick.Stop()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			case <-tick.C:
				p.cur.Store(snaps[i%rotation])
			}
		}
	}()
	runConcurrentReaders(b, h)
	close(stop)
	churn.Wait()
}
