package serve

import "sync"

// defaultCacheLimit bounds the parameterized render cache per snapshot.
// The parameter space is tiny (≤51 states, 6 organs, a handful of useful
// k values), so the bound exists to survive adversarial query strings,
// not to evict: when full, renders still succeed but are not stored.
const defaultCacheLimit = 512

// renderCache memoizes parameterized renders for one snapshot, keyed by
// the verbatim RawQuery so a repeat hit never parses the query. A
// homegrown singleflight coalesces concurrent cold renders of the same
// key into a single execution. Both live and die with their Snapshot —
// publishing a new epoch abandons the whole cache at once, which is the
// "per-epoch" invalidation story: there isn't any.
type renderCache struct {
	limit int

	mu      sync.RWMutex
	entries [numEndpoints]map[string][]byte
	flight  map[flightKey]*flightCall
	size    int
}

type flightKey struct {
	ep  endpoint
	raw string
}

// flightCall is one in-progress render; done is closed after body/err
// are set, so waiters read them without further synchronization.
type flightCall struct {
	done chan struct{}
	body []byte
	err  error
}

func newRenderCache(limit int) renderCache {
	return renderCache{limit: limit}
}

// get returns the cached body for (ep, raw) if present. Hit path takes
// only the read lock.
func (c *renderCache) get(ep endpoint, raw string) ([]byte, bool) {
	c.mu.RLock()
	body, ok := c.entries[ep][raw]
	c.mu.RUnlock()
	return body, ok
}

// size reports the number of cached rendered bodies.
func (c *renderCache) cached() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.size
}

// do returns the body for (ep, raw), rendering at most once across
// concurrent callers. shared reports whether this caller piggybacked on
// another's render (for the coalesced counter). Failed renders (4xx) are
// never cached, so errors cannot be pinned into the snapshot.
func (c *renderCache) do(ep endpoint, raw string, render func() ([]byte, error)) (body []byte, shared bool, err error) {
	k := flightKey{ep: ep, raw: raw}
	c.mu.Lock()
	if body, ok := c.entries[ep][raw]; ok {
		// Lost a race with a completed render — a cache hit after all.
		c.mu.Unlock()
		return body, true, nil
	}
	if fc, ok := c.flight[k]; ok {
		c.mu.Unlock()
		<-fc.done
		return fc.body, true, fc.err
	}
	fc := &flightCall{done: make(chan struct{})}
	if c.flight == nil {
		c.flight = make(map[flightKey]*flightCall)
	}
	c.flight[k] = fc
	c.mu.Unlock()

	fc.body, fc.err = render()

	c.mu.Lock()
	delete(c.flight, k)
	if fc.err == nil && c.size < c.limit {
		if c.entries[ep] == nil {
			c.entries[ep] = make(map[string][]byte)
		}
		c.entries[ep][raw] = fc.body
		c.size++
	}
	c.mu.Unlock()
	close(fc.done)
	return fc.body, false, fc.err
}
