package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// LoadConfig configures a closed-loop load run against a live query API.
type LoadConfig struct {
	// BaseURL is the telemetry server root, e.g. "http://127.0.0.1:9090".
	BaseURL string
	// Paths are the request paths rotated through per worker; defaults to
	// the fixed endpoints plus a parameterized sample.
	Paths []string
	// Concurrency is the number of closed-loop workers (default 4).
	Concurrency int
	// Duration bounds the run (default 5s); ctx can end it earlier.
	Duration time.Duration
	// UseETag replays each path's last ETag via If-None-Match, measuring
	// the steady-state 304 path like a well-behaved poller.
	UseETag bool
}

// DefaultPaths is the rotation used when LoadConfig.Paths is empty.
var DefaultPaths = []string{
	"/api/epoch", "/api/stats", "/api/states", "/api/organs",
	"/api/rr", "/api/top", "/api/clusters", "/api/top?k=25",
}

// LoadResult summarizes a load run.
type LoadResult struct {
	Requests     int64
	Errors       int64 // transport errors (not HTTP error statuses)
	NotModified  int64
	StatusCounts map[int]int64
	Bytes        int64
	Elapsed      time.Duration
	ReqPerSec    float64
	P50, P90, P99, Max time.Duration
}

// String renders the one-screen report cmd/queryload prints.
func (r LoadResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "requests     %d (%.0f req/s over %s)\n",
		r.Requests, r.ReqPerSec, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&sb, "latency      p50=%s p90=%s p99=%s max=%s\n",
		r.P50, r.P90, r.P99, r.Max)
	fmt.Fprintf(&sb, "not-modified %d\n", r.NotModified)
	fmt.Fprintf(&sb, "bytes        %d\n", r.Bytes)
	statuses := make([]int, 0, len(r.StatusCounts))
	for code := range r.StatusCounts {
		statuses = append(statuses, code)
	}
	sort.Ints(statuses)
	for _, code := range statuses {
		fmt.Fprintf(&sb, "status %d   %d\n", code, r.StatusCounts[code])
	}
	if r.Errors > 0 {
		fmt.Fprintf(&sb, "errors       %d\n", r.Errors)
	}
	return sb.String()
}

// loadWorker is one closed loop's private state: its latency samples,
// status tallies, and per-path ETag memory. No sharing, no locks.
type loadWorker struct {
	latencies []time.Duration
	statuses  map[int]int64
	etags     map[string]string
	requests  int64
	errors    int64
	notMod    int64
	bytes     int64
}

// RunLoad drives Concurrency closed-loop workers over the paths until
// Duration elapses or ctx is done, then merges per-worker tallies.
func RunLoad(ctx context.Context, cfg LoadConfig) (LoadResult, error) {
	if cfg.BaseURL == "" {
		return LoadResult{}, fmt.Errorf("loadgen: BaseURL is required")
	}
	base := strings.TrimSuffix(cfg.BaseURL, "/")
	paths := cfg.Paths
	if len(paths) == 0 {
		paths = DefaultPaths
	}
	workers := cfg.Concurrency
	if workers <= 0 {
		workers = 4
	}
	duration := cfg.Duration
	if duration <= 0 {
		duration = 5 * time.Second
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        workers * 2,
		MaxIdleConnsPerHost: workers * 2,
	}}
	defer client.CloseIdleConnections()

	runCtx, cancel := context.WithTimeout(ctx, duration)
	defer cancel()

	ws := make([]*loadWorker, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < workers; i++ {
		w := &loadWorker{
			statuses: make(map[int]int64),
			etags:    make(map[string]string),
		}
		ws[i] = w
		wg.Add(1)
		go func(offset int) {
			defer wg.Done()
			for n := offset; runCtx.Err() == nil; n++ {
				path := paths[n%len(paths)]
				w.hit(runCtx, client, base, path, cfg.UseETag)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := LoadResult{StatusCounts: make(map[int]int64), Elapsed: elapsed}
	var all []time.Duration
	for _, w := range ws {
		res.Requests += w.requests
		res.Errors += w.errors
		res.NotModified += w.notMod
		res.Bytes += w.bytes
		for code, n := range w.statuses {
			res.StatusCounts[code] += n
		}
		all = append(all, w.latencies...)
	}
	if elapsed > 0 {
		res.ReqPerSec = float64(res.Requests) / elapsed.Seconds()
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		res.P50 = all[len(all)*50/100]
		res.P90 = all[len(all)*90/100]
		res.P99 = all[len(all)*99/100]
		res.Max = all[len(all)-1]
	}
	return res, nil
}

// hit issues one request and records its outcome on the worker.
func (w *loadWorker) hit(ctx context.Context, client *http.Client, base, path string, useETag bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
	if err != nil {
		w.errors++
		return
	}
	if useETag {
		if tag := w.etags[path]; tag != "" {
			req.Header.Set("If-None-Match", tag)
		}
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		// A canceled context ending the run is not a server error.
		if ctx.Err() == nil {
			w.errors++
		}
		return
	}
	n, _ := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	w.latencies = append(w.latencies, time.Since(t0))
	w.requests++
	w.bytes += n
	w.statuses[resp.StatusCode]++
	if resp.StatusCode == http.StatusNotModified {
		w.notMod++
	}
	if tag := resp.Header.Get("Etag"); tag != "" {
		w.etags[path] = tag
	}
}
