package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"donorsense/internal/gen"
	"donorsense/internal/pipeline"
	"donorsense/internal/report"
)

// TestReadersNeverTearUnderRefreshChurn hammers the handler from many
// goroutines while the real Engine.Refresh publishes new epochs, and
// asserts every observed response is internally consistent (header ETag
// == body ETag — all bytes from one snapshot) and that each reader's
// view moves monotonically forward (seq never decreases; no resurrected
// epochs). Run under -race this also proves the pointer-swap publication
// has no synchronization holes.
func TestReadersNeverTearUnderRefreshChurn(t *testing.T) {
	corpus := gen.Generate(gen.DefaultConfig(0.01))
	tweets := corpus.Tweets
	if len(tweets) < 2000 {
		t.Fatalf("corpus too small: %d", len(tweets))
	}

	d := pipeline.NewDataset()
	cfg := report.DefaultAnalysisConfig()
	cfg.KUsers = 8
	cfg.SweepKs = nil
	cfg.SilhouetteSample = 0
	cfg.Workers = 2
	e := report.NewEngine(d, cfg)

	// Seed enough data for a first analysis, publish epoch 0.
	const chunk = 200
	for _, tw := range tweets[:chunk] {
		d.Process(tw)
	}
	p := NewPublisher()
	publish := func() {
		a, err := e.Refresh()
		if err != nil {
			t.Errorf("refresh: %v", err)
			return
		}
		if _, err := p.Publish(a, Meta{
			Epoch:     e.Epoch(),
			Refreshes: e.Refreshes(),
			Top:       report.TopMentioners(d, 50),
		}); err != nil {
			t.Errorf("publish: %v", err)
		}
	}
	publish()

	h := NewHandler(p)
	stop := make(chan struct{})
	paths := []string{"/api/epoch", "/api/stats", "/api/top?k=5", "/api/states", "/api/rr"}

	const readers = 8
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lastSeq := uint64(0)
			lastEpoch := uint64(0)
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				path := paths[(n+i)%len(paths)]
				req := httptest.NewRequest(http.MethodGet, path, nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("reader %d: %s → %d: %s", i, path, rec.Code, rec.Body.String())
					return
				}
				var m docMeta
				if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
					t.Errorf("reader %d: torn body on %s: %v", i, path, err)
					return
				}
				if hdr := rec.Header().Get("Etag"); hdr != m.ETag {
					t.Errorf("reader %d: header ETag %q != body ETag %q on %s — torn response",
						i, hdr, m.ETag, path)
					return
				}
				if m.Seq < lastSeq || m.Epoch < lastEpoch {
					t.Errorf("reader %d: view moved backwards: seq %d→%d epoch %d→%d",
						i, lastSeq, m.Seq, lastEpoch, m.Epoch)
					return
				}
				lastSeq, lastEpoch = m.Seq, m.Epoch
			}
		}(i)
	}

	// Publisher: keep folding tweets and republishing new epochs.
	for off := chunk; off+chunk <= len(tweets) && off < 20*chunk; off += chunk {
		for _, tw := range tweets[off : off+chunk] {
			d.Process(tw)
		}
		publish()
	}
	finalSeq := p.Seq()
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// After the last publish every new read serves the final snapshot —
	// nobody can observe a stale-beyond-current view.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/epoch", nil))
	var m docMeta
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.Seq != finalSeq {
		t.Fatalf("post-churn read sees seq %d, final published is %d", m.Seq, finalSeq)
	}
	if finalSeq < 5 {
		t.Fatalf("churn too weak: only %d publishes", finalSeq)
	}
}
