package serve

import (
	"context"
	"sync/atomic"
	"time"

	"donorsense/internal/report"
)

// Publisher owns the RCU snapshot pointer. One goroutine (the collect
// loop, right after Engine.Refresh) calls Publish; any number of request
// goroutines call Current. Readers that loaded the previous snapshot
// keep serving it untouched — there is no reclamation to coordinate
// because snapshots are garbage-collected when the last reader drops
// its pointer.
type Publisher struct {
	cur atomic.Pointer[Snapshot]
	seq atomic.Uint64

	// draining flips once at shutdown: new requests get 503+Retry-After
	// while Drain waits for the in-flight count to reach zero.
	draining atomic.Bool
	inflight atomic.Int64

	// Request-outcome tallies, owned here (not in obs) so the handler
	// works lock-free even with no registry attached.
	hits        atomic.Uint64 // 200 from a pre-rendered or cached body
	notModified atomic.Uint64 // 304 header-only answers
	renders     atomic.Uint64 // cold parameterized renders executed
	coalesced   atomic.Uint64 // requests that piggybacked on another render
	badRequest  atomic.Uint64 // 400s
	notFound    atomic.Uint64 // 404s (no snapshot, unknown route/key)
	rejected    atomic.Uint64 // 503s during drain

	lastPublishUnixNano atomic.Int64
}

// NewPublisher returns an empty publisher; until the first Publish every
// request answers 404.
func NewPublisher() *Publisher { return &Publisher{} }

// Publish builds an immutable snapshot from the analysis and swaps it
// in. It must run where the analysis is quiescent — on the goroutine
// that just completed Engine.Refresh — because the build deep-copies
// data the next refresh will mutate in place.
func (p *Publisher) Publish(a *report.Analysis, meta Meta) (*Snapshot, error) {
	snap, err := BuildSnapshot(a, meta, p.seq.Add(1))
	if err != nil {
		return nil, err
	}
	p.cur.Store(snap)
	p.lastPublishUnixNano.Store(time.Now().UnixNano())
	return snap, nil
}

// Current returns the live snapshot, or nil before the first Publish.
func (p *Publisher) Current() *Snapshot { return p.cur.Load() }

// Epoch returns the epoch currently served (0 before the first Publish).
func (p *Publisher) Epoch() uint64 {
	if s := p.cur.Load(); s != nil {
		return s.Epoch
	}
	return 0
}

// Seq returns the publish sequence number (0 before the first Publish).
func (p *Publisher) Seq() uint64 { return p.seq.Load() }

// CacheSize returns the current snapshot's cached-render count.
func (p *Publisher) CacheSize() int {
	if s := p.cur.Load(); s != nil {
		return s.cache.cached()
	}
	return 0
}

// BeginDrain flips the publisher into drain mode: every request from
// here on answers 503 with Retry-After. Safe to call more than once.
func (p *Publisher) BeginDrain() { p.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (p *Publisher) Draining() bool { return p.draining.Load() }

// Drain waits until the requests that entered before BeginDrain have
// finished (or ctx expires). Late arrivals are not waited for — they
// only ever execute the constant-time 503 path.
func (p *Publisher) Drain(ctx context.Context) error {
	for p.inflight.Load() != 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
	return nil
}

// Inflight returns the number of requests currently inside the handler.
func (p *Publisher) Inflight() int64 { return p.inflight.Load() }

// Stats is a point-in-time copy of the request tallies for /statusz.
type Stats struct {
	Seq         uint64
	Epoch       uint64
	Hits        uint64
	NotModified uint64
	Renders     uint64
	Coalesced   uint64
	BadRequest  uint64
	NotFound    uint64
	Rejected    uint64
	CacheSize   int
	Draining    bool
	LastPublish time.Time // zero before the first Publish
}

// Misses is the cold-path total: renders plus coalesced waiters.
func (s Stats) Misses() uint64 { return s.Renders + s.Coalesced }

// Stats snapshots the counters.
func (p *Publisher) Stats() Stats {
	st := Stats{
		Seq:         p.seq.Load(),
		Epoch:       p.Epoch(),
		Hits:        p.hits.Load(),
		NotModified: p.notModified.Load(),
		Renders:     p.renders.Load(),
		Coalesced:   p.coalesced.Load(),
		BadRequest:  p.badRequest.Load(),
		NotFound:    p.notFound.Load(),
		Rejected:    p.rejected.Load(),
		CacheSize:   p.CacheSize(),
		Draining:    p.draining.Load(),
	}
	if ns := p.lastPublishUnixNano.Load(); ns != 0 {
		st.LastPublish = time.Unix(0, ns)
	}
	return st
}
