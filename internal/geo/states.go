// Package geo implements the offline geocoding substrate that stands in
// for the paper's use of OpenStreetMap/Nominatim: a USA gazetteer (states,
// territories, and major cities with aliases), a free-text geocoder for
// messy self-reported Twitter profile locations, and a reverse geocoder
// for GPS geo-tags. The paper only needs country- and state-level
// resolution, which this package provides without network access.
package geo

import (
	"sort"
	"strings"
)

// Region is a US census region, used to state claims like "Kansas is the
// only state in the Midwestern USA with excess kidney conversations".
type Region int

// Census regions.
const (
	Northeast Region = iota
	Midwest
	South
	West
	Territory // PR, DC handled as South per census, territories separate
)

// String returns the region name.
func (r Region) String() string {
	switch r {
	case Northeast:
		return "Northeast"
	case Midwest:
		return "Midwest"
	case South:
		return "South"
	case West:
		return "West"
	case Territory:
		return "Territory"
	}
	return "Region(?)"
}

// BBox is a latitude/longitude bounding box. Bounds are approximate —
// good enough to assign a synthetic geo-tag to a state, which is the only
// reverse-geocoding the pipeline needs.
type BBox struct {
	MinLat, MaxLat float64
	MinLon, MaxLon float64
}

// Contains reports whether the point is inside the box.
func (b BBox) Contains(lat, lon float64) bool {
	return lat >= b.MinLat && lat <= b.MaxLat && lon >= b.MinLon && lon <= b.MaxLon
}

// Center returns the box center.
func (b BBox) Center() (lat, lon float64) {
	return (b.MinLat + b.MaxLat) / 2, (b.MinLon + b.MaxLon) / 2
}

// State describes one US state, district, or territory in the gazetteer.
type State struct {
	Code       string // USPS code, e.g. "KS"
	Name       string // full name, e.g. "Kansas"
	Region     Region
	Population int // approximate 2015 resident population
	Box        BBox
}

// states lists the 50 states, DC, and Puerto Rico — the paper's Figure 4
// covers "all states and territories of the USA". Populations are 2015
// census estimates (thousands rounded); boxes are approximate hulls.
var states = []State{
	{"AL", "Alabama", South, 4859000, BBox{30.2, 35.0, -88.5, -84.9}},
	{"AK", "Alaska", West, 738000, BBox{51.2, 71.4, -179.1, -129.9}},
	{"AZ", "Arizona", West, 6828000, BBox{31.3, 37.0, -114.8, -109.0}},
	{"AR", "Arkansas", South, 2978000, BBox{33.0, 36.5, -94.6, -89.6}},
	{"CA", "California", West, 39145000, BBox{32.5, 42.0, -124.4, -114.1}},
	{"CO", "Colorado", West, 5456000, BBox{37.0, 41.0, -109.1, -102.0}},
	{"CT", "Connecticut", Northeast, 3591000, BBox{40.9, 42.1, -73.7, -71.8}},
	{"DE", "Delaware", South, 946000, BBox{38.4, 39.8, -75.8, -75.0}},
	{"DC", "District of Columbia", South, 672000, BBox{38.79, 38.996, -77.12, -76.91}},
	{"FL", "Florida", South, 20271000, BBox{24.5, 31.0, -87.6, -80.0}},
	{"GA", "Georgia", South, 10215000, BBox{30.4, 35.0, -85.6, -80.8}},
	{"HI", "Hawaii", West, 1432000, BBox{18.9, 22.2, -160.3, -154.8}},
	{"ID", "Idaho", West, 1655000, BBox{42.0, 49.0, -117.2, -111.0}},
	{"IL", "Illinois", Midwest, 12860000, BBox{36.9, 42.5, -91.5, -87.5}},
	{"IN", "Indiana", Midwest, 6620000, BBox{37.8, 41.8, -88.1, -84.8}},
	{"IA", "Iowa", Midwest, 3124000, BBox{40.4, 43.5, -96.6, -90.1}},
	{"KS", "Kansas", Midwest, 2912000, BBox{37.0, 40.0, -102.1, -94.6}},
	{"KY", "Kentucky", South, 4425000, BBox{36.5, 39.1, -89.6, -81.9}},
	{"LA", "Louisiana", South, 4671000, BBox{28.9, 33.0, -94.0, -88.8}},
	{"ME", "Maine", Northeast, 1329000, BBox{43.1, 47.5, -71.1, -66.9}},
	{"MD", "Maryland", South, 6006000, BBox{37.9, 39.7, -79.5, -75.0}},
	{"MA", "Massachusetts", Northeast, 6794000, BBox{41.2, 42.9, -73.5, -69.9}},
	{"MI", "Michigan", Midwest, 9923000, BBox{41.7, 48.3, -90.4, -82.4}},
	{"MN", "Minnesota", Midwest, 5490000, BBox{43.5, 49.4, -97.2, -89.5}},
	{"MS", "Mississippi", South, 2992000, BBox{30.2, 35.0, -91.7, -88.1}},
	{"MO", "Missouri", Midwest, 6084000, BBox{36.0, 40.6, -95.8, -89.1}},
	{"MT", "Montana", West, 1033000, BBox{44.4, 49.0, -116.1, -104.0}},
	{"NE", "Nebraska", Midwest, 1896000, BBox{40.0, 43.0, -104.1, -95.3}},
	{"NV", "Nevada", West, 2891000, BBox{35.0, 42.0, -120.0, -114.0}},
	{"NH", "New Hampshire", Northeast, 1331000, BBox{42.7, 45.3, -72.6, -70.6}},
	{"NJ", "New Jersey", Northeast, 8958000, BBox{38.9, 41.4, -75.6, -73.9}},
	{"NM", "New Mexico", West, 2085000, BBox{31.3, 37.0, -109.1, -103.0}},
	{"NY", "New York", Northeast, 19795000, BBox{40.5, 45.0, -79.8, -71.8}},
	{"NC", "North Carolina", South, 10043000, BBox{33.8, 36.6, -84.3, -75.4}},
	{"ND", "North Dakota", Midwest, 757000, BBox{45.9, 49.0, -104.1, -96.6}},
	{"OH", "Ohio", Midwest, 11613000, BBox{38.4, 42.0, -84.8, -80.5}},
	{"OK", "Oklahoma", South, 3911000, BBox{33.6, 37.0, -103.0, -94.4}},
	{"OR", "Oregon", West, 4029000, BBox{42.0, 46.3, -124.6, -116.5}},
	{"PA", "Pennsylvania", Northeast, 12803000, BBox{39.7, 42.3, -80.5, -74.7}},
	{"PR", "Puerto Rico", Territory, 3474000, BBox{17.9, 18.5, -67.3, -65.2}},
	{"RI", "Rhode Island", Northeast, 1056000, BBox{41.1, 42.0, -71.9, -71.1}},
	{"SC", "South Carolina", South, 4896000, BBox{32.0, 35.2, -83.4, -78.5}},
	{"SD", "South Dakota", Midwest, 858000, BBox{42.5, 45.9, -104.1, -96.4}},
	{"TN", "Tennessee", South, 6600000, BBox{35.0, 36.7, -90.3, -81.6}},
	{"TX", "Texas", South, 27469000, BBox{25.8, 36.5, -106.6, -93.5}},
	{"UT", "Utah", West, 2996000, BBox{37.0, 42.0, -114.1, -109.0}},
	{"VT", "Vermont", Northeast, 626000, BBox{42.7, 45.0, -73.4, -71.5}},
	{"VA", "Virginia", South, 8383000, BBox{36.5, 39.5, -83.7, -75.2}},
	{"WA", "Washington", West, 7170000, BBox{45.5, 49.0, -124.8, -116.9}},
	{"WV", "West Virginia", South, 1844000, BBox{37.2, 40.6, -82.6, -77.7}},
	{"WI", "Wisconsin", Midwest, 5771000, BBox{42.5, 47.1, -92.9, -86.8}},
	{"WY", "Wyoming", West, 586000, BBox{41.0, 45.0, -111.1, -104.1}},
}

// stateByCode indexes the gazetteer by USPS code.
var stateByCode = func() map[string]*State {
	m := make(map[string]*State, len(states))
	for i := range states {
		m[states[i].Code] = &states[i]
	}
	return m
}()

// stateByLowerCode indexes the gazetteer by lowercase USPS code, so the
// geocoder's already-lowered tokens can probe it without a per-phrase
// strings.ToUpper allocation.
var stateByLowerCode = func() map[string]*State {
	m := make(map[string]*State, len(states))
	for i := range states {
		m[strings.ToLower(states[i].Code)] = &states[i]
	}
	return m
}()

// stateByName indexes the gazetteer by lowercase full name.
var stateByName = func() map[string]*State {
	m := make(map[string]*State, len(states))
	for i := range states {
		m[strings.ToLower(states[i].Name)] = &states[i]
	}
	return m
}()

// States returns all states, DC, and PR sorted by code. The slice is a
// copy; callers may mutate it.
func States() []State {
	out := make([]State, len(states))
	copy(out, states)
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// NumStates is the number of gazetteer regions (50 states + DC + PR).
func NumStates() int { return len(states) }

// StateByCode returns the state with the given USPS code
// (case-insensitive). ok is false for unknown codes.
func StateByCode(code string) (State, bool) {
	s, ok := stateByCode[strings.ToUpper(strings.TrimSpace(code))]
	if !ok {
		return State{}, false
	}
	return *s, true
}

// StateByName returns the state with the given full name
// (case-insensitive). ok is false for unknown names.
func StateByName(name string) (State, bool) {
	s, ok := stateByName[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return State{}, false
	}
	return *s, true
}

// StateCodes returns all USPS codes sorted ascending. The index of a code
// in this slice is the canonical region index used in region membership
// matrices (rows of the Figure 4 matrix K).
func StateCodes() []string {
	out := make([]string, 0, len(states))
	for _, s := range states {
		out = append(out, s.Code)
	}
	sort.Strings(out)
	return out
}

// stateIndexByCode maps a USPS code to its canonical region index.
var stateIndexByCode = func() map[string]int {
	m := make(map[string]int, len(states))
	for i, c := range StateCodes() {
		m[c] = i
	}
	return m
}()

// StateIndex returns the canonical region index of a USPS code, or -1 for
// unknown codes.
func StateIndex(code string) int {
	if i, ok := stateIndexByCode[strings.ToUpper(strings.TrimSpace(code))]; ok {
		return i
	}
	return -1
}
