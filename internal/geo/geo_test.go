package geo

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestStatesCount(t *testing.T) {
	if NumStates() != 52 { // 50 states + DC + PR
		t.Errorf("NumStates() = %d, want 52", NumStates())
	}
	if len(States()) != NumStates() {
		t.Error("States() length mismatch")
	}
}

func TestStateByCode(t *testing.T) {
	tests := []struct {
		code   string
		want   string
		wantOK bool
	}{
		{"KS", "Kansas", true},
		{"ks", "Kansas", true},
		{" ny ", "New York", true},
		{"DC", "District of Columbia", true},
		{"PR", "Puerto Rico", true},
		{"ZZ", "", false},
		{"", "", false},
	}
	for _, tt := range tests {
		s, ok := StateByCode(tt.code)
		if ok != tt.wantOK || (ok && s.Name != tt.want) {
			t.Errorf("StateByCode(%q) = %q, %v; want %q, %v", tt.code, s.Name, ok, tt.want, tt.wantOK)
		}
	}
}

func TestStateByName(t *testing.T) {
	s, ok := StateByName("kansas")
	if !ok || s.Code != "KS" {
		t.Errorf("StateByName(kansas) = %+v, %v", s, ok)
	}
	s, ok = StateByName("District of Columbia")
	if !ok || s.Code != "DC" {
		t.Errorf("StateByName(DC full name) = %+v, %v", s, ok)
	}
	if _, ok := StateByName("atlantis"); ok {
		t.Error("StateByName(atlantis) matched")
	}
}

func TestStateCodesSortedAndIndexed(t *testing.T) {
	codes := StateCodes()
	if len(codes) != NumStates() {
		t.Fatalf("len(StateCodes()) = %d", len(codes))
	}
	for i := 1; i < len(codes); i++ {
		if codes[i-1] >= codes[i] {
			t.Errorf("codes not sorted at %d: %s >= %s", i, codes[i-1], codes[i])
		}
	}
	for i, c := range codes {
		if StateIndex(c) != i {
			t.Errorf("StateIndex(%s) = %d, want %d", c, StateIndex(c), i)
		}
	}
	if StateIndex("XX") != -1 {
		t.Error("StateIndex(XX) != -1")
	}
}

func TestRegions(t *testing.T) {
	ks, _ := StateByCode("KS")
	if ks.Region != Midwest {
		t.Errorf("Kansas region = %v, want Midwest", ks.Region)
	}
	ma, _ := StateByCode("MA")
	if ma.Region != Northeast {
		t.Errorf("MA region = %v, want Northeast", ma.Region)
	}
	la, _ := StateByCode("LA")
	if la.Region != South {
		t.Errorf("LA region = %v, want South", la.Region)
	}
	for _, r := range []Region{Northeast, Midwest, South, West, Territory} {
		if strings.HasPrefix(r.String(), "Region(") {
			t.Errorf("region %d has no name", int(r))
		}
	}
}

// TestCityCoordsInsideStateBox validates gazetteer consistency: every
// city's coordinates must fall inside its own state's bounding box, since
// the synthetic generator places geo-tags at city coordinates and the
// reverse geocoder resolves them by box.
func TestCityCoordsInsideStateBox(t *testing.T) {
	for _, c := range Cities() {
		st, ok := StateByCode(c.StateCode)
		if !ok {
			t.Errorf("city %q references unknown state %q", c.Name, c.StateCode)
			continue
		}
		if !st.Box.Contains(c.Lat, c.Lon) {
			t.Errorf("city %q (%v,%v) outside %s box %+v", c.Name, c.Lat, c.Lon, st.Code, st.Box)
		}
	}
}

func TestEveryStateHasACity(t *testing.T) {
	have := map[string]bool{}
	for _, c := range Cities() {
		have[c.StateCode] = true
	}
	for _, s := range States() {
		if !have[s.Code] {
			t.Errorf("state %s has no gazetteer city", s.Code)
		}
	}
}

func TestCityLookupDisambiguation(t *testing.T) {
	// "springfield" exists in IL, MA, MO; MO (166k) should rank first.
	list := CityLookup("Springfield")
	if len(list) < 3 {
		t.Fatalf("springfield matches = %d, want >= 3", len(list))
	}
	if list[0].StateCode != "MO" {
		t.Errorf("most populous springfield = %s, want MO", list[0].StateCode)
	}
	for i := 1; i < len(list); i++ {
		if list[i].Population > list[i-1].Population {
			t.Error("CityLookup not sorted by descending population")
		}
	}
}

func TestCityLookupNormalization(t *testing.T) {
	if got := CityLookup("St. Louis"); len(got) == 0 || got[0].StateCode != "MO" {
		t.Errorf("St. Louis lookup failed: %v", got)
	}
	if got := CityLookup("Saint Louis"); len(got) == 0 || got[0].StateCode != "MO" {
		t.Errorf("Saint Louis lookup failed: %v", got)
	}
	if got := CityLookup("WINSTON-SALEM"); len(got) == 0 || got[0].StateCode != "NC" {
		t.Errorf("Winston-Salem lookup failed: %v", got)
	}
}

func TestAliasesResolve(t *testing.T) {
	for alias, want := range cityAliases {
		found := false
		for _, c := range cityIndex[want.name] {
			if c.StateCode == want.state {
				found = true
			}
		}
		if !found {
			t.Errorf("alias %q points at missing city %q/%s", alias, want.name, want.state)
		}
	}
}

func TestLocateStateForms(t *testing.T) {
	g := NewGeocoder()
	tests := []struct {
		in    string
		state string
	}{
		{"Melbourne, FL", "FL"},
		{"melbourne, fl", "FL"},
		{"Wichita, Kansas", "KS"},
		{"Kansas", "KS"},
		{"TX", "TX"},
		{"Austin, TX", "TX"},
		{"austin tx", "TX"},
		{"New York", "NY"},
		{"NYC", "NY"},
		{"Brooklyn", "NY"},
		{"washington dc", "DC"},
		{"Washington, D.C.", "DC"},
		{"Chicago", "IL"},
		{"chi town", "IL"},
		{"Philly", "PA"},
		{"NOLA", "LA"},
		{"New Orleans, LA", "LA"},
		{"Boston ✈ worldwide", "MA"},
		{"living in sunny california", "CA"},
		{"SoCal", "CA"},
		{"Vegas baby", "NV"},
		{"Kansas City", "MO"}, // most populous KC
		{"Kansas City, KS", "KS"},
		{"Springfield", "MO"},
		{"Springfield, MA", "MA"},
		{"Portland", "OR"},
		{"Portland, ME", "ME"},
		{"PDX", "OR"},
		{"Columbus", "OH"},
		{"Columbus, GA", "GA"},
		{"Charleston", "SC"},
		{"charleston, wv", "WV"},
		{"Richmond VA", "VA"},
		{"Arlington", "TX"},
		{"Arlington, VA", "VA"},
		{"Vancouver, WA", "WA"},
		{"St. Louis", "MO"},
		{"San Juan, PR", "PR"},
		{"The Big Apple", "NY"},
	}
	for _, tt := range tests {
		got := g.Locate(tt.in)
		if !got.IsUSState() || got.StateCode != tt.state {
			t.Errorf("Locate(%q) = %+v, want state %s", tt.in, got, tt.state)
		}
	}
}

func TestLocateForeign(t *testing.T) {
	g := NewGeocoder()
	tests := []struct {
		in      string
		country string
	}{
		{"London", "GB"},
		{"London, England", "GB"},
		{"Toronto", "CA"},
		{"Canada", "CA"},
		{"Melbourne", "AU"}, // bare melbourne is the bigger AU city
		{"Melbourne, Australia", "AU"},
		{"Vancouver", "CA"}, // bare vancouver is Vancouver BC
		{"São Paulo, Brasil", "BR"},
		{"Lagos, Nigeria", "NG"},
		{"Tokyo", "JP"},
		{"somewhere in england", "GB"},
	}
	for _, tt := range tests {
		got := g.Locate(tt.in)
		if got.Country != tt.country || got.IsUSState() {
			t.Errorf("Locate(%q) = %+v, want country %s", tt.in, got, tt.country)
		}
	}
}

func TestLocateCountryOnlyAndUnknown(t *testing.T) {
	g := NewGeocoder()
	for _, in := range []string{"USA", "United States", "america", "U.S.A."} {
		got := g.Locate(in)
		if got.Country != "US" || got.Accuracy != AccuracyCountry {
			t.Errorf("Locate(%q) = %+v, want US country-only", in, got)
		}
		if got.IsUSState() {
			t.Errorf("Locate(%q) claims state resolution", in)
		}
	}
	for _, in := range []string{"", "    ", "🌍✨", "your mom's house", "probably sleeping", "worldwide"} {
		got := g.Locate(in)
		if got.IsUSState() {
			t.Errorf("Locate(%q) = %+v, resolved to a US state", in, got)
		}
	}
}

func TestLocateAmbiguousCodeWords(t *testing.T) {
	g := NewGeocoder()
	// Lowercase English words that double as state codes must not match
	// when standing alone in running text.
	for _, in := range []string{"just me", "hi there", "ok cool", "in or out", "oh well", "la la land"} {
		got := g.Locate(in)
		if got.IsUSState() {
			t.Errorf("Locate(%q) = %+v, want no state", in, got)
		}
	}
	// But uppercase forms do match.
	if got := g.Locate("LA"); !got.IsUSState() || got.StateCode != "LA" {
		t.Errorf("Locate(LA) = %+v, want Louisiana", got)
	}
	if got := g.Locate("OK"); !got.IsUSState() || got.StateCode != "OK" {
		t.Errorf("Locate(OK) = %+v, want Oklahoma", got)
	}
}

func TestLocateNeverPanics(t *testing.T) {
	g := NewGeocoder()
	f := func(s string) bool {
		_ = g.Locate(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestReverse(t *testing.T) {
	g := NewGeocoder()
	tests := []struct {
		lat, lon float64
		state    string
		ok       bool
	}{
		{39.0, -95.7, "KS", true},  // Topeka
		{42.4, -71.1, "MA", true},  // Boston
		{38.9, -77.02, "DC", true}, // DC, inside MD hull: smallest box must win
		{34.1, -118.2, "CA", true}, // LA
		{18.4, -66.1, "PR", true},  // San Juan
		{61.2, -149.9, "AK", true}, // Anchorage
		{0, 0, "", false},          // Gulf of Guinea
		{51.5, -0.1, "", false},    // London
		{25.0, -90.0, "", false},   // Gulf of Mexico
	}
	for _, tt := range tests {
		got, ok := g.Reverse(tt.lat, tt.lon)
		if ok != tt.ok || (ok && got.StateCode != tt.state) {
			t.Errorf("Reverse(%v,%v) = %+v, %v; want %s, %v", tt.lat, tt.lon, got, ok, tt.state, tt.ok)
		}
		if ok && !got.IsUSState() {
			t.Errorf("Reverse(%v,%v) not a US state: %+v", tt.lat, tt.lon, got)
		}
	}
}

// TestReverseRoundTripCities: reverse-geocoding every gazetteer city's
// coordinates must land in that city's state (boxes overlap, so allow the
// smallest-box winner to differ only when the city's state box contains
// another state's entire box — which the data avoids).
func TestReverseRoundTripCities(t *testing.T) {
	g := NewGeocoder()
	mismatches := 0
	for _, c := range Cities() {
		loc, ok := g.Reverse(c.Lat, c.Lon)
		if !ok {
			t.Errorf("Reverse of %s (%v,%v) found nothing", c.Name, c.Lat, c.Lon)
			continue
		}
		if loc.StateCode != c.StateCode {
			mismatches++
			t.Logf("city %s/%s reverse-geocoded to %s", c.Name, c.StateCode, loc.StateCode)
		}
	}
	// Rectangular hulls overlap along borders; a handful of border cities
	// may flip. More than 10% would mean broken boxes.
	if mismatches > len(Cities())/10 {
		t.Errorf("%d/%d cities reverse-geocode to the wrong state", mismatches, len(Cities()))
	}
}

func TestBBox(t *testing.T) {
	b := BBox{MinLat: 10, MaxLat: 20, MinLon: -30, MaxLon: -20}
	if !b.Contains(15, -25) || b.Contains(25, -25) || b.Contains(15, -35) {
		t.Error("BBox.Contains wrong")
	}
	lat, lon := b.Center()
	if lat != 15 || lon != -25 {
		t.Errorf("Center = %v,%v", lat, lon)
	}
}

func TestAccuracyString(t *testing.T) {
	for _, a := range []Accuracy{AccuracyNone, AccuracyCountry, AccuracyState, AccuracyCity} {
		if strings.HasPrefix(a.String(), "accuracy(") {
			t.Errorf("Accuracy %d unnamed", int(a))
		}
	}
}

func BenchmarkLocate(b *testing.B) {
	g := NewGeocoder()
	inputs := []string{
		"Melbourne, FL", "NYC", "somewhere in england", "Kansas City",
		"living in sunny california", "🌴 Miami 🌴", "not telling you",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Locate(inputs[i%len(inputs)])
	}
}

func BenchmarkReverse(b *testing.B) {
	g := NewGeocoder()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Reverse(39.0, -95.7)
	}
}

func TestZIPState(t *testing.T) {
	tests := []struct {
		zip    string
		want   string
		wantOK bool
	}{
		{"78701", "TX", true}, // Austin
		{"90210", "CA", true}, // Beverly Hills
		{"66044", "KS", true}, // Lawrence
		{"02139", "MA", true}, // Cambridge
		{"10001", "NY", true}, // Manhattan
		{"00901", "PR", true}, // San Juan
		{"20001", "DC", true},
		{"99501", "AK", true},
		{"885", "TX", true}, // bare prefix
		{"696", "", false},  // unallocated gap
		{"12", "", false},   // wrong length
		{"abcde", "", false},
		{"", "", false},
	}
	for _, tt := range tests {
		got, ok := ZIPState(tt.zip)
		if ok != tt.wantOK || got != tt.want {
			t.Errorf("ZIPState(%q) = %q, %v; want %q, %v", tt.zip, got, ok, tt.want, tt.wantOK)
		}
	}
}

func TestZIPRangesRoundTrip(t *testing.T) {
	// Every state with an allocation must round-trip through its ranges.
	for _, s := range States() {
		ranges := ZIPRangesFor(s.Code)
		if len(ranges) == 0 {
			t.Errorf("state %s has no ZIP ranges", s.Code)
			continue
		}
		for _, r := range ranges {
			for _, prefix := range []int{r[0], r[1]} {
				zip := fmt.Sprintf("%03d00", prefix)
				got, ok := ZIPState(zip)
				if !ok || got != s.Code {
					t.Errorf("ZIPState(%s) = %q, %v; want %s", zip, got, ok, s.Code)
				}
			}
		}
	}
}

func TestLocateWithZIPs(t *testing.T) {
	g := NewGeocoder()
	tests := []struct {
		in    string
		state string
	}{
		{"Austin, TX 78701", "TX"},
		{"78701", "TX"},
		{"Lawrence KS 66044", "KS"},
		{"90210", "CA"},
		{"Cambridge MA 02139", "MA"},
	}
	for _, tt := range tests {
		got := g.Locate(tt.in)
		if !got.IsUSState() || got.StateCode != tt.state {
			t.Errorf("Locate(%q) = %+v, want %s", tt.in, got, tt.state)
		}
	}
	// Non-ZIP numbers must not resolve.
	for _, in := range []string{"est. 1998", "since 2015", "1234"} {
		if g.Locate(in).IsUSState() {
			t.Errorf("Locate(%q) resolved to a state", in)
		}
	}
}
