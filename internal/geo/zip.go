package geo

import "strconv"

// US ZIP codes encode the state in their first three digits. Profile
// locations like "Austin, TX 78701" — or even a bare "78701" — therefore
// resolve to a state without any other signal. The table below maps
// 3-digit prefix ranges to USPS codes (the standard national allocation,
// coarse but complete).

// zipRange assigns [Lo, Hi] (inclusive) 3-digit prefixes to a state.
type zipRange struct {
	Lo, Hi int
	State  string
}

// zipRanges is ordered by Lo for binary search.
var zipRanges = []zipRange{
	{6, 9, "PR"},
	{10, 27, "MA"},
	{28, 29, "RI"},
	{30, 38, "NH"},
	{39, 49, "ME"},
	{50, 59, "VT"},
	{60, 69, "CT"},
	{70, 89, "NJ"},
	{100, 149, "NY"},
	{150, 196, "PA"},
	{197, 199, "DE"},
	{200, 205, "DC"},
	{206, 219, "MD"},
	{220, 246, "VA"},
	{247, 268, "WV"},
	{270, 289, "NC"},
	{290, 299, "SC"},
	{300, 319, "GA"},
	{320, 349, "FL"},
	{350, 369, "AL"},
	{370, 385, "TN"},
	{386, 397, "MS"},
	{398, 399, "GA"},
	{400, 427, "KY"},
	{430, 459, "OH"},
	{460, 479, "IN"},
	{480, 499, "MI"},
	{500, 528, "IA"},
	{530, 549, "WI"},
	{550, 567, "MN"},
	{570, 577, "SD"},
	{580, 588, "ND"},
	{590, 599, "MT"},
	{600, 629, "IL"},
	{630, 658, "MO"},
	{660, 679, "KS"},
	{680, 693, "NE"},
	{700, 714, "LA"},
	{716, 729, "AR"},
	{730, 749, "OK"},
	{750, 799, "TX"},
	{800, 816, "CO"},
	{820, 831, "WY"},
	{832, 838, "ID"},
	{840, 847, "UT"},
	{850, 865, "AZ"},
	{870, 884, "NM"},
	{885, 885, "TX"},
	{889, 898, "NV"},
	{900, 961, "CA"},
	{967, 968, "HI"},
	{970, 979, "OR"},
	{980, 994, "WA"},
	{995, 999, "AK"},
}

// ZIPState resolves a 5-digit ZIP code (or a bare 3-digit prefix) to a
// USPS state code. ok is false for malformed or unallocated codes.
func ZIPState(zip string) (string, bool) {
	if len(zip) != 5 && len(zip) != 3 {
		return "", false
	}
	n, err := strconv.Atoi(zip)
	if err != nil || n < 0 {
		return "", false
	}
	prefix := n
	if len(zip) == 5 {
		prefix = n / 100
	}
	return zipStateFromPrefix(prefix)
}

// zipStateFromPrefix resolves a numeric 3-digit ZIP prefix to a state
// code by binary search over the allocation table.
func zipStateFromPrefix(prefix int) (string, bool) {
	lo, hi := 0, len(zipRanges)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		r := zipRanges[mid]
		switch {
		case prefix < r.Lo:
			hi = mid - 1
		case prefix > r.Hi:
			lo = mid + 1
		default:
			return r.State, true
		}
	}
	return "", false
}

// ZIPRangesFor returns the 3-digit prefix ranges allocated to a state,
// used by the synthetic generator to fabricate plausible ZIPs.
func ZIPRangesFor(state string) [][2]int {
	var out [][2]int
	for _, r := range zipRanges {
		if r.State == state {
			out = append(out, [2]int{r.Lo, r.Hi})
		}
	}
	return out
}
