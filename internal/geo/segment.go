package geo

import (
	"sync"
	"unicode"
	"unicode/utf8"
)

// The segmenter is the allocation-heavy half of profile-location
// geocoding: every tweet without a GPS tag runs its profile string
// through here (on a cache miss). Instead of materializing rune slices
// and per-segment string slices, tokens are lowered into one reusable
// byte buffer and described by spans, and candidate slices are reused
// across calls through a pool — so a steady-state Locate allocates
// nothing beyond what escapes in the returned Location (which is all
// interned gazetteer strings).

// segTok is one token of a location segment: a span into the scratch
// buffer, its segment index, and whether it was written all-uppercase
// with 2–3 runes (so "LA" can be told apart from "la").
type segTok struct {
	lo, hi int32 // byte range into locScratch.buf (lowercase text)
	seg    int16 // index of the comma-ish segment the token belongs to
	upper  bool
}

// locSpan locates a matched phrase: segment index plus first/last token
// offsets within that segment.
type locSpan struct{ seg, i, j int }

// nameHit is a state-name match.
type nameHit struct {
	code string
	at   locSpan
}

// cityHit is a gazetteer-city match.
type cityHit struct {
	city City
	at   locSpan
}

// locScratch holds every buffer one Locate call needs. Instances are
// pooled; all slices keep their capacity between calls.
type locScratch struct {
	buf      []byte   // lowered token text, concatenated
	toks     []segTok // token spans in input order
	segStart []int32  // toks index where each (non-empty) segment begins
	phrase   []byte   // assembly buffer for multi-token phrases

	stateNames  []nameHit
	cityMatches []cityHit
}

var locScratchPool = sync.Pool{New: func() any { return new(locScratch) }}

func (sc *locScratch) reset() {
	sc.buf = sc.buf[:0]
	sc.toks = sc.toks[:0]
	sc.segStart = sc.segStart[:0]
	sc.phrase = sc.phrase[:0]
	sc.stateNames = sc.stateNames[:0]
	sc.cityMatches = sc.cityMatches[:0]
}

// segments returns how many non-empty segments were found.
func (sc *locScratch) segments() int { return len(sc.segStart) }

// segToks returns the tokens of segment si.
func (sc *locScratch) segToks(si int) []segTok {
	lo := sc.segStart[si]
	hi := int32(len(sc.toks))
	if si+1 < len(sc.segStart) {
		hi = sc.segStart[si+1]
	}
	return sc.toks[lo:hi]
}

// tokBytes returns the lowered text of one token.
func (sc *locScratch) tokBytes(t segTok) []byte { return sc.buf[t.lo:t.hi] }

// segment breaks a raw location string into comma-ish segments of
// tokens. Letters, digits, and apostrophes form tokens; ',', '/', '|',
// ';', and bullet characters break segments; periods bind ("D.C." ->
// "dc"); hyphens break tokens without breaking the segment; everything
// else is whitespace. Token text is lowered into the scratch buffer.
func segment(raw string, sc *locScratch) {
	var (
		seg      int16
		segOpen  bool // current segment has at least one token
		tokStart = -1 // buf offset of the open token, -1 when none
		tokRunes int
		tokLower bool
	)
	flushTok := func() {
		if tokStart < 0 {
			return
		}
		if !segOpen {
			sc.segStart = append(sc.segStart, int32(len(sc.toks)))
			segOpen = true
		}
		up := !tokLower && tokRunes >= 2 && tokRunes <= 3
		sc.toks = append(sc.toks, segTok{lo: int32(tokStart), hi: int32(len(sc.buf)), seg: seg, upper: up})
		tokStart, tokRunes, tokLower = -1, 0, false
	}
	flushSeg := func() {
		flushTok()
		if segOpen {
			seg++
			segOpen = false
		}
	}
	for _, r := range raw {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '\'':
			if unicode.IsLower(r) {
				tokLower = true
			}
			if tokStart < 0 {
				tokStart = len(sc.buf)
			}
			if r < utf8.RuneSelf {
				c := byte(r)
				if 'A' <= c && c <= 'Z' {
					c += 'a' - 'A'
				}
				sc.buf = append(sc.buf, c)
			} else {
				sc.buf = utf8.AppendRune(sc.buf, unicode.ToLower(r))
			}
			tokRunes++
		case r == ',' || r == '/' || r == '|' || r == ';' || r == '•' || r == '·' || r == '~':
			flushSeg()
		case r == '.' || r == '-':
			// Periods and hyphens bind: "D.C." -> "dc", "Winston-Salem"
			// -> "winston salem" (hyphen becomes a token break w/o
			// segment break).
			if r == '-' {
				flushTok()
			}
		default:
			flushTok()
		}
	}
	flushSeg()
}

// phraseBytes assembles tokens i..j (inclusive) of a segment into the
// scratch phrase buffer, space-joined, with "saint" canonicalized to
// "st". The returned slice is valid until the next phraseBytes call.
func (sc *locScratch) phraseBytes(seg []segTok, i, j int) []byte {
	sc.phrase = sc.phrase[:0]
	for k := i; k <= j; k++ {
		if k > i {
			sc.phrase = append(sc.phrase, ' ')
		}
		t := sc.tokBytes(seg[k])
		if string(t) == "saint" {
			sc.phrase = append(sc.phrase, "st"...)
		} else {
			sc.phrase = append(sc.phrase, t...)
		}
	}
	return sc.phrase
}

// allDigitsBytes reports whether b consists solely of ASCII digits.
func allDigitsBytes(b []byte) bool {
	for _, c := range b {
		if c < '0' || c > '9' {
			return false
		}
	}
	return len(b) > 0
}
