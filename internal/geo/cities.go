package geo

import "strings"

// City is a gazetteer entry for a US city. Coordinates are approximate
// city centers; Population is an approximate 2015 estimate used to break
// ties between same-named cities in different states (the most populous
// wins when the location string gives no state hint, matching Nominatim's
// importance ranking).
type City struct {
	Name       string // canonical lowercase name, e.g. "kansas city"
	StateCode  string
	Population int
	Lat, Lon   float64
}

// cities is the city gazetteer. It intentionally includes the classic
// ambiguous names (Springfield, Portland, Columbus, Charleston, Aurora,
// Arlington, Richmond, Rochester, Columbia, Glendale, Peoria,
// Fayetteville, Kansas City) so the disambiguation logic is exercised by
// real data.
var cities = []City{
	// Alabama
	{"birmingham", "AL", 212000, 33.5, -86.8},
	{"montgomery", "AL", 200000, 32.4, -86.3},
	{"mobile", "AL", 194000, 30.7, -88.1},
	{"huntsville", "AL", 190000, 34.7, -86.6},
	{"tuscaloosa", "AL", 98000, 33.2, -87.6},
	// Alaska
	{"anchorage", "AK", 298000, 61.2, -149.9},
	{"fairbanks", "AK", 32000, 64.8, -147.7},
	{"juneau", "AK", 32000, 58.3, -134.4},
	// Arizona
	{"phoenix", "AZ", 1563000, 33.4, -112.1},
	{"tucson", "AZ", 531000, 32.2, -110.9},
	{"mesa", "AZ", 471000, 33.4, -111.8},
	{"scottsdale", "AZ", 236000, 33.5, -111.9},
	{"glendale", "AZ", 240000, 33.5, -112.2},
	{"tempe", "AZ", 175000, 33.4, -111.9},
	{"flagstaff", "AZ", 70000, 35.2, -111.7},
	{"peoria", "AZ", 168000, 33.6, -112.2},
	// Arkansas
	{"little rock", "AR", 198000, 34.7, -92.3},
	{"fayetteville", "AR", 82000, 36.1, -94.2},
	{"fort smith", "AR", 88000, 35.4, -94.4},
	// California
	{"los angeles", "CA", 3972000, 34.1, -118.2},
	{"san diego", "CA", 1395000, 32.7, -117.2},
	{"san jose", "CA", 1027000, 37.3, -121.9},
	{"san francisco", "CA", 865000, 37.8, -122.4},
	{"fresno", "CA", 520000, 36.7, -119.8},
	{"sacramento", "CA", 490000, 38.6, -121.5},
	{"long beach", "CA", 474000, 33.8, -118.2},
	{"oakland", "CA", 420000, 37.8, -122.3},
	{"bakersfield", "CA", 374000, 35.4, -119.0},
	{"anaheim", "CA", 351000, 33.8, -117.9},
	{"santa ana", "CA", 335000, 33.7, -117.9},
	{"riverside", "CA", 322000, 34.0, -117.4},
	{"richmond", "CA", 110000, 37.9, -122.3},
	{"glendale", "CA", 201000, 34.1, -118.3},
	{"pasadena", "CA", 142000, 34.1, -118.1},
	{"berkeley", "CA", 121000, 37.9, -122.3},
	// Colorado
	{"denver", "CO", 682000, 39.7, -105.0},
	{"colorado springs", "CO", 456000, 38.8, -104.8},
	{"aurora", "CO", 360000, 39.7, -104.8},
	{"fort collins", "CO", 161000, 40.6, -105.1},
	{"boulder", "CO", 107000, 40.0, -105.3},
	// Connecticut
	{"bridgeport", "CT", 148000, 41.2, -73.2},
	{"new haven", "CT", 130000, 41.3, -72.9},
	{"hartford", "CT", 124000, 41.8, -72.7},
	{"stamford", "CT", 129000, 41.1, -73.5},
	// Delaware
	{"wilmington", "DE", 72000, 39.7, -75.5},
	{"dover", "DE", 37000, 39.2, -75.5},
	{"newark", "DE", 33000, 39.7, -75.75},
	// District of Columbia
	{"washington", "DC", 672000, 38.9, -77.0},
	// Florida
	{"jacksonville", "FL", 868000, 30.3, -81.7},
	{"miami", "FL", 441000, 25.8, -80.2},
	{"tampa", "FL", 369000, 28.0, -82.5},
	{"orlando", "FL", 271000, 28.5, -81.4},
	{"st petersburg", "FL", 257000, 27.8, -82.6},
	{"tallahassee", "FL", 190000, 30.4, -84.3},
	{"fort lauderdale", "FL", 178000, 26.1, -80.1},
	{"gainesville", "FL", 131000, 29.7, -82.3},
	{"melbourne", "FL", 80000, 28.1, -80.6},
	// Georgia
	{"atlanta", "GA", 464000, 33.7, -84.4},
	{"augusta", "GA", 197000, 33.5, -82.0},
	{"columbus", "GA", 200000, 32.5, -84.9},
	{"savannah", "GA", 146000, 32.1, -81.1},
	{"athens", "GA", 122000, 34.0, -83.4},
	{"macon", "GA", 153000, 32.8, -83.6},
	// Hawaii
	{"honolulu", "HI", 352000, 21.3, -157.9},
	{"hilo", "HI", 45000, 19.7, -155.1},
	// Idaho
	{"boise", "ID", 218000, 43.6, -116.1},
	{"idaho falls", "ID", 60000, 43.5, -112.0},
	// Illinois
	{"chicago", "IL", 2721000, 41.9, -87.6},
	{"aurora", "IL", 201000, 41.8, -88.3},
	{"rockford", "IL", 149000, 42.3, -89.1},
	{"joliet", "IL", 148000, 41.5, -88.1},
	{"naperville", "IL", 147000, 41.8, -88.1},
	{"springfield", "IL", 117000, 39.8, -89.6},
	{"peoria", "IL", 115000, 40.7, -89.6},
	// Indiana
	{"indianapolis", "IN", 853000, 39.8, -86.2},
	{"fort wayne", "IN", 264000, 41.1, -85.1},
	{"evansville", "IN", 120000, 38.0, -87.5},
	{"south bend", "IN", 101000, 41.7, -86.3},
	// Iowa
	{"des moines", "IA", 210000, 41.6, -93.6},
	{"cedar rapids", "IA", 130000, 42.0, -91.7},
	{"davenport", "IA", 103000, 41.5, -90.6},
	{"iowa city", "IA", 74000, 41.7, -91.5},
	// Kansas
	{"wichita", "KS", 390000, 37.7, -97.3},
	{"overland park", "KS", 186000, 38.98, -94.7},
	{"kansas city", "KS", 151000, 39.1, -94.7},
	{"topeka", "KS", 127000, 39.0, -95.7},
	{"olathe", "KS", 134000, 38.9, -94.8},
	{"lawrence", "KS", 93000, 38.97, -95.2},
	// Kentucky
	{"louisville", "KY", 615000, 38.3, -85.8},
	{"lexington", "KY", 314000, 38.0, -84.5},
	{"bowling green", "KY", 65000, 37.0, -86.4},
	// Louisiana
	{"new orleans", "LA", 390000, 30.0, -90.1},
	{"baton rouge", "LA", 229000, 30.5, -91.1},
	{"shreveport", "LA", 197000, 32.5, -93.8},
	{"lafayette", "LA", 127000, 30.2, -92.0},
	// Maine
	{"portland", "ME", 67000, 43.7, -70.3},
	{"bangor", "ME", 32000, 44.8, -68.8},
	// Maryland
	{"baltimore", "MD", 621000, 39.3, -76.6},
	{"annapolis", "MD", 39000, 38.97, -76.5},
	{"frederick", "MD", 68000, 39.4, -77.4},
	{"rockville", "MD", 65000, 39.1, -77.2},
	// Massachusetts
	{"boston", "MA", 667000, 42.4, -71.1},
	{"worcester", "MA", 184000, 42.3, -71.8},
	{"springfield", "MA", 154000, 42.1, -72.6},
	{"cambridge", "MA", 110000, 42.4, -71.1},
	{"lowell", "MA", 110000, 42.6, -71.3},
	// Michigan
	{"detroit", "MI", 677000, 42.3, -83.0},
	{"grand rapids", "MI", 195000, 43.0, -85.7},
	{"warren", "MI", 135000, 42.5, -83.0},
	{"lansing", "MI", 115000, 42.7, -84.6},
	{"ann arbor", "MI", 117000, 42.3, -83.7},
	{"flint", "MI", 98000, 43.0, -83.7},
	// Minnesota
	{"minneapolis", "MN", 411000, 45.0, -93.3},
	{"saint paul", "MN", 300000, 44.9, -93.1},
	{"rochester", "MN", 112000, 44.0, -92.5},
	{"duluth", "MN", 86000, 46.8, -92.1},
	// Mississippi
	{"jackson", "MS", 171000, 32.3, -90.2},
	{"gulfport", "MS", 72000, 30.4, -89.1},
	{"biloxi", "MS", 45000, 30.4, -88.9},
	// Missouri
	{"kansas city", "MO", 475000, 39.1, -94.6},
	{"st louis", "MO", 316000, 38.6, -90.2},
	{"springfield", "MO", 166000, 37.2, -93.3},
	{"columbia", "MO", 119000, 38.95, -92.3},
	{"jefferson city", "MO", 43000, 38.6, -92.2},
	// Montana
	{"billings", "MT", 110000, 45.8, -108.5},
	{"missoula", "MT", 71000, 46.9, -114.0},
	{"bozeman", "MT", 43000, 45.7, -111.0},
	{"helena", "MT", 31000, 46.6, -112.0},
	// Nebraska
	{"omaha", "NE", 444000, 41.3, -96.0},
	{"lincoln", "NE", 277000, 40.8, -96.7},
	// Nevada
	{"las vegas", "NV", 623000, 36.2, -115.1},
	{"henderson", "NV", 285000, 36.0, -115.0},
	{"reno", "NV", 241000, 39.5, -119.8},
	{"carson city", "NV", 54000, 39.2, -119.8},
	// New Hampshire
	{"manchester", "NH", 110000, 43.0, -71.5},
	{"nashua", "NH", 87000, 42.8, -71.5},
	{"concord", "NH", 43000, 43.2, -71.5},
	// New Jersey
	{"newark", "NJ", 281000, 40.7, -74.2},
	{"jersey city", "NJ", 264000, 40.7, -74.1},
	{"paterson", "NJ", 147000, 40.9, -74.2},
	{"trenton", "NJ", 84000, 40.2, -74.8},
	{"atlantic city", "NJ", 39000, 39.4, -74.4},
	// New Mexico
	{"albuquerque", "NM", 559000, 35.1, -106.6},
	{"las cruces", "NM", 101000, 32.3, -106.8},
	{"santa fe", "NM", 84000, 35.7, -106.0},
	// New York
	{"new york", "NY", 8550000, 40.7, -74.0},
	{"brooklyn", "NY", 2637000, 40.65, -73.95},
	{"buffalo", "NY", 258000, 42.9, -78.9},
	{"rochester", "NY", 210000, 43.2, -77.6},
	{"yonkers", "NY", 201000, 40.9, -73.9},
	{"syracuse", "NY", 144000, 43.0, -76.1},
	{"albany", "NY", 98000, 42.7, -73.8},
	// North Carolina
	{"charlotte", "NC", 827000, 35.2, -80.8},
	{"raleigh", "NC", 452000, 35.8, -78.6},
	{"greensboro", "NC", 285000, 36.1, -79.8},
	{"durham", "NC", 257000, 36.0, -78.9},
	{"winston salem", "NC", 241000, 36.1, -80.2},
	{"fayetteville", "NC", 204000, 35.1, -78.9},
	{"asheville", "NC", 89000, 35.6, -82.6},
	// North Dakota
	{"fargo", "ND", 118000, 46.9, -96.8},
	{"bismarck", "ND", 71000, 46.8, -100.8},
	// Ohio
	{"columbus", "OH", 850000, 40.0, -83.0},
	{"cleveland", "OH", 388000, 41.5, -81.7},
	{"cincinnati", "OH", 298000, 39.1, -84.5},
	{"toledo", "OH", 279000, 41.7, -83.6},
	{"akron", "OH", 197000, 41.1, -81.5},
	{"dayton", "OH", 141000, 39.8, -84.2},
	// Oklahoma
	{"oklahoma city", "OK", 631000, 35.5, -97.5},
	{"tulsa", "OK", 403000, 36.2, -96.0},
	{"norman", "OK", 120000, 35.2, -97.4},
	// Oregon
	{"portland", "OR", 632000, 45.5, -122.7},
	{"salem", "OR", 164000, 44.9, -123.0},
	{"eugene", "OR", 163000, 44.1, -123.1},
	{"bend", "OR", 87000, 44.1, -121.3},
	// Pennsylvania
	{"philadelphia", "PA", 1567000, 40.0, -75.2},
	{"pittsburgh", "PA", 304000, 40.4, -80.0},
	{"allentown", "PA", 120000, 40.6, -75.5},
	{"erie", "PA", 99000, 42.1, -80.1},
	{"harrisburg", "PA", 49000, 40.3, -76.9},
	// Puerto Rico
	{"san juan", "PR", 355000, 18.4, -66.1},
	{"ponce", "PR", 149000, 18.0, -66.6},
	// Rhode Island
	{"providence", "RI", 179000, 41.8, -71.4},
	{"warwick", "RI", 81000, 41.7, -71.4},
	// South Carolina
	{"columbia", "SC", 134000, 34.0, -81.0},
	{"charleston", "SC", 133000, 32.8, -80.0},
	{"north charleston", "SC", 109000, 32.9, -80.1},
	{"greenville", "SC", 67000, 34.9, -82.4},
	{"myrtle beach", "SC", 31000, 33.7, -78.9},
	// South Dakota
	{"sioux falls", "SD", 171000, 43.5, -96.7},
	{"rapid city", "SD", 74000, 44.1, -103.2},
	// Tennessee
	{"nashville", "TN", 655000, 36.2, -86.8},
	{"memphis", "TN", 656000, 35.1, -90.0},
	{"knoxville", "TN", 185000, 36.0, -83.9},
	{"chattanooga", "TN", 176000, 35.05, -85.3},
	// Texas
	{"houston", "TX", 2296000, 29.8, -95.4},
	{"san antonio", "TX", 1470000, 29.4, -98.5},
	{"dallas", "TX", 1300000, 32.8, -96.8},
	{"austin", "TX", 931000, 30.3, -97.7},
	{"fort worth", "TX", 833000, 32.8, -97.3},
	{"el paso", "TX", 681000, 31.8, -106.4},
	{"arlington", "TX", 389000, 32.7, -97.1},
	{"corpus christi", "TX", 324000, 27.8, -97.4},
	{"plano", "TX", 284000, 33.0, -96.7},
	{"lubbock", "TX", 249000, 33.6, -101.9},
	// Utah
	{"salt lake city", "UT", 193000, 40.8, -111.9},
	{"provo", "UT", 116000, 40.2, -111.7},
	{"ogden", "UT", 85000, 41.2, -112.0},
	// Vermont
	{"burlington", "VT", 42000, 44.5, -73.2},
	{"montpelier", "VT", 8000, 44.3, -72.6},
	// Virginia
	{"virginia beach", "VA", 453000, 36.9, -76.0},
	{"norfolk", "VA", 246000, 36.9, -76.3},
	{"chesapeake", "VA", 236000, 36.8, -76.3},
	{"richmond", "VA", 221000, 37.5, -77.4},
	{"arlington", "VA", 230000, 38.9, -77.1},
	{"alexandria", "VA", 154000, 38.8, -77.1},
	{"roanoke", "VA", 100000, 37.3, -80.0},
	// Washington
	{"seattle", "WA", 684000, 47.6, -122.3},
	{"spokane", "WA", 214000, 47.7, -117.4},
	{"tacoma", "WA", 207000, 47.3, -122.4},
	{"vancouver", "WA", 173000, 45.6, -122.6},
	{"bellevue", "WA", 140000, 47.6, -122.2},
	{"olympia", "WA", 51000, 47.0, -122.9},
	// West Virginia
	{"charleston", "WV", 49000, 38.3, -81.6},
	{"huntington", "WV", 48000, 38.4, -82.4},
	{"morgantown", "WV", 31000, 39.6, -79.95},
	// Wisconsin
	{"milwaukee", "WI", 600000, 43.0, -87.9},
	{"madison", "WI", 249000, 43.1, -89.4},
	{"green bay", "WI", 105000, 44.5, -88.0},
	// Wyoming
	{"cheyenne", "WY", 63000, 41.1, -104.8},
	{"casper", "WY", 60000, 42.9, -106.3},
}

// cityIndex maps a lowercase city name to every gazetteer entry with that
// name, sorted by descending population so the first entry is the default
// disambiguation.
var cityIndex = func() map[string][]*City {
	m := make(map[string][]*City)
	for i := range cities {
		c := &cities[i]
		m[c.Name] = append(m[c.Name], c)
	}
	for _, list := range m {
		// Insertion sort by descending population; lists are tiny.
		for i := 1; i < len(list); i++ {
			for j := i; j > 0 && list[j].Population > list[j-1].Population; j-- {
				list[j], list[j-1] = list[j-1], list[j]
			}
		}
	}
	return m
}()

// Cities returns a copy of the full city gazetteer.
func Cities() []City {
	out := make([]City, len(cities))
	copy(out, cities)
	return out
}

// CityLookup returns the gazetteer entries matching the (normalized) city
// name, most populous first.
func CityLookup(name string) []City {
	list := cityIndex[normalizeCityName(name)]
	out := make([]City, len(list))
	for i, c := range list {
		out[i] = *c
	}
	return out
}

// normalizeCityName canonicalizes a city name: lowercase, "saint"→"st",
// punctuation stripped, whitespace collapsed.
func normalizeCityName(s string) string {
	s = strings.ToLower(strings.TrimSpace(s))
	s = strings.ReplaceAll(s, ".", "")
	s = strings.ReplaceAll(s, "-", " ")
	fields := strings.Fields(s)
	for i, f := range fields {
		if f == "saint" {
			fields[i] = "st"
		}
	}
	return strings.Join(fields, " ")
}

// cityAliases maps informal names to canonical gazetteer (name, state)
// pairs — the colloquialisms Twitter users actually write in profiles.
var cityAliases = map[string]struct{ name, state string }{
	"nyc":            {"new york", "NY"},
	"new york city":  {"new york", "NY"},
	"manhattan":      {"new york", "NY"},
	"the bronx":      {"new york", "NY"},
	"bronx":          {"new york", "NY"},
	"queens":         {"new york", "NY"},
	"big apple":      {"new york", "NY"},
	"the big apple":  {"new york", "NY"},
	"philly":         {"philadelphia", "PA"},
	"vegas":          {"las vegas", "NV"},
	"sin city":       {"las vegas", "NV"},
	"atl":            {"atlanta", "GA"},
	"hotlanta":       {"atlanta", "GA"},
	"chitown":        {"chicago", "IL"},
	"chi town":       {"chicago", "IL"},
	"windy city":     {"chicago", "IL"},
	"the windy city": {"chicago", "IL"},
	"sf":             {"san francisco", "CA"},
	"san fran":       {"san francisco", "CA"},
	"frisco":         {"san francisco", "CA"},
	"bay area":       {"san francisco", "CA"},
	"the bay":        {"san francisco", "CA"},
	"nola":           {"new orleans", "LA"},
	"motor city":     {"detroit", "MI"},
	"motown":         {"detroit", "MI"},
	"beantown":       {"boston", "MA"},
	"h town":         {"houston", "TX"},
	"htown":          {"houston", "TX"},
	"slc":            {"salt lake city", "UT"},
	"okc":            {"oklahoma city", "OK"},
	"kc":             {"kansas city", "MO"},
	"stl":            {"st louis", "MO"},
	"dfw":            {"dallas", "TX"},
	"pdx":            {"portland", "OR"},
	"twin cities":    {"minneapolis", "MN"},
	"jax":            {"jacksonville", "FL"},
	"hollywood":      {"los angeles", "CA"},
	"socal":          {"los angeles", "CA"},
	"norcal":         {"san francisco", "CA"},
	"music city":     {"nashville", "TN"},
	"steel city":     {"pittsburgh", "PA"},
}
