package geo

// foreignPlace is a well-known non-US city used to catch profile
// locations like "London" or "Toronto" that would otherwise be mistaken
// for (or shadow) US places.
type foreignPlace struct {
	Country    string
	Population int
}

// foreignCities maps lowercase city names to their country. Population is
// the metro magnitude used to arbitrate against same-named US cities
// (Melbourne AU vs Melbourne FL, Vancouver BC vs Vancouver WA).
var foreignCities = map[string]foreignPlace{
	"london":         {"GB", 8700000},
	"manchester uk":  {"GB", 2700000},
	"birmingham uk":  {"GB", 1100000},
	"glasgow":        {"GB", 1200000},
	"edinburgh":      {"GB", 500000},
	"dublin":         {"IE", 1300000},
	"toronto":        {"CA", 2800000},
	"montreal":       {"CA", 1700000},
	"vancouver":      {"CA", 645000},
	"ottawa":         {"CA", 930000},
	"calgary":        {"CA", 1200000},
	"sydney":         {"AU", 4900000},
	"melbourne":      {"AU", 4500000},
	"brisbane":       {"AU", 2300000},
	"perth":          {"AU", 2000000},
	"auckland":       {"NZ", 1500000},
	"paris":          {"FR", 2200000},
	"berlin":         {"DE", 3500000},
	"munich":         {"DE", 1400000},
	"madrid":         {"ES", 3200000},
	"barcelona":      {"ES", 1600000},
	"rome":           {"IT", 2900000},
	"milan":          {"IT", 1300000},
	"amsterdam":      {"NL", 820000},
	"stockholm":      {"SE", 920000},
	"tokyo":          {"JP", 13500000},
	"osaka":          {"JP", 2700000},
	"seoul":          {"KR", 10000000},
	"beijing":        {"CN", 21500000},
	"shanghai":       {"CN", 24200000},
	"hong kong":      {"HK", 7300000},
	"singapore":      {"SG", 5600000},
	"mumbai":         {"IN", 12400000},
	"delhi":          {"IN", 16800000},
	"new delhi":      {"IN", 250000},
	"bangalore":      {"IN", 8400000},
	"karachi":        {"PK", 14900000},
	"lahore":         {"PK", 11100000},
	"manila":         {"PH", 1700000},
	"jakarta":        {"ID", 10100000},
	"bangkok":        {"TH", 8300000},
	"dubai":          {"AE", 2500000},
	"istanbul":       {"TR", 14700000},
	"cairo":          {"EG", 9500000},
	"lagos":          {"NG", 13000000},
	"nairobi":        {"KE", 3100000},
	"johannesburg":   {"ZA", 4400000},
	"cape town":      {"ZA", 3700000},
	"mexico city":    {"MX", 8900000},
	"guadalajara":    {"MX", 1500000},
	"monterrey":      {"MX", 1100000},
	"sao paulo":      {"BR", 12000000},
	"são paulo":      {"BR", 12000000},
	"rio de janeiro": {"BR", 6500000},
	"recife":         {"BR", 1600000},
	"buenos aires":   {"AR", 2900000},
	"bogota":         {"CO", 8000000},
	"lima":           {"PE", 8900000},
	"santiago":       {"CL", 5600000},
	"caracas":        {"VE", 2900000},
	"moscow":         {"RU", 12200000},
	"kyiv":           {"UA", 2900000},
}

// foreignCountries maps lowercase country names/demonyms/aliases to a
// country code, used to classify profile locations like "England" or
// "somewhere in Canada" as non-US.
var foreignCountries = map[string]string{
	"uk": "GB", "united kingdom": "GB", "england": "GB", "scotland": "GB",
	"wales": "GB", "great britain": "GB", "britain": "GB",
	"ireland": "IE",
	"canada":  "CA", "ontario": "CA", "quebec": "CA", "alberta": "CA",
	"british columbia": "CA",
	"australia":        "AU", "new zealand": "NZ",
	"france": "FR", "germany": "DE", "deutschland": "DE", "spain": "ES",
	"españa": "ES", "italy": "IT", "italia": "IT", "netherlands": "NL",
	"holland": "NL", "belgium": "BE", "sweden": "SE", "norway": "NO",
	"denmark": "DK", "finland": "FI", "portugal": "PT", "greece": "GR",
	"poland": "PL", "austria": "AT", "switzerland": "CH",
	"japan": "JP", "south korea": "KR", "korea": "KR", "china": "CN",
	"taiwan": "TW", "india": "IN", "pakistan": "PK", "bangladesh": "BD",
	"philippines": "PH", "indonesia": "ID", "malaysia": "MY",
	"thailand": "TH", "vietnam": "VN", "turkey": "TR", "israel": "IL",
	"saudi arabia": "SA", "uae": "AE", "egypt": "EG", "nigeria": "NG",
	"ghana": "GH", "kenya": "KE", "south africa": "ZA",
	"mexico": "MX", "méxico": "MX", "brazil": "BR", "brasil": "BR",
	"argentina": "AR", "colombia": "CO", "peru": "PE", "chile": "CL",
	"venezuela": "VE", "ecuador": "EC", "russia": "RU", "ukraine": "UA",
	"worldwide": "XX", "everywhere": "XX", "earth": "XX", "world": "XX",
	"the moon": "XX", "moon": "XX", "mars": "XX", "internet": "XX",
	"cyberspace": "XX", "global": "XX", "nowhere": "XX",
}
