package geo

import "testing"

// FuzzLocate hammers the geocoder with arbitrary profile strings: no
// panics, and any state resolution must reference a real state.
func FuzzLocate(f *testing.F) {
	g := NewGeocoder()
	for _, s := range []string{
		"Melbourne, FL", "NYC", "London", "wichita ks 67202", "📍 Boston ✈",
		"la la land", "D.C.", "", "78701", "kansas city, KS | USA",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		loc := g.Locate(s)
		if loc.IsUSState() {
			if _, ok := StateByCode(loc.StateCode); !ok {
				t.Fatalf("Locate(%q) invented state %q", s, loc.StateCode)
			}
		}
		if loc.Accuracy == AccuracyNone && (loc.Country != "" || loc.StateCode != "") {
			t.Fatalf("Locate(%q) = %+v: AccuracyNone with content", s, loc)
		}
	})
}

// FuzzZIPState checks the ZIP lookup never panics and only returns real
// states.
func FuzzZIPState(f *testing.F) {
	f.Add("78701")
	f.Add("00000")
	f.Add("999")
	f.Add("abcde")
	f.Fuzz(func(t *testing.T, s string) {
		code, ok := ZIPState(s)
		if ok {
			if _, valid := StateByCode(code); !valid {
				t.Fatalf("ZIPState(%q) invented state %q", s, code)
			}
		}
	})
}
