package geo_test

import (
	"fmt"

	"donorsense/internal/geo"
)

// ExampleGeocoder_Locate resolves the messy self-reported profile
// locations real Twitter users write.
func ExampleGeocoder_Locate() {
	g := geo.NewGeocoder()
	for _, raw := range []string{
		"Melbourne, FL",
		"NYC ✈ worldwide",
		"wichita ks 67202",
		"London",
		"probably napping",
	} {
		loc := g.Locate(raw)
		switch {
		case loc.IsUSState():
			fmt.Printf("%-20s → %s\n", raw, loc.StateCode)
		case loc.Country != "":
			fmt.Printf("%-20s → country %s\n", raw, loc.Country)
		default:
			fmt.Printf("%-20s → unresolved\n", raw)
		}
	}
	// Output:
	// Melbourne, FL        → FL
	// NYC ✈ worldwide      → NY
	// wichita ks 67202     → KS
	// London               → country GB
	// probably napping     → unresolved
}

// ExampleGeocoder_Reverse resolves a GPS geo-tag the way the pipeline's
// augmentation step does.
func ExampleGeocoder_Reverse() {
	g := geo.NewGeocoder()
	loc, ok := g.Reverse(39.0, -95.7) // Topeka
	fmt.Println(loc.StateCode, ok)
	_, ok = g.Reverse(51.5, -0.1) // London: outside the USA
	fmt.Println(ok)
	// Output:
	// KS true
	// false
}
