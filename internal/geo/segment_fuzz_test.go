package geo

import (
	"strings"
	"testing"
	"unicode"
)

// referenceSplitSegments is the pre-optimization segmenter, kept verbatim
// as the oracle for FuzzSegmentDifferential: the pooled scratch segmenter
// must produce the same segments, token text, and uppercase flags for any
// input, or the geocoder's resolution ladder could silently diverge.
func referenceSplitSegments(raw string) [][]refSegToken {
	var segs [][]refSegToken
	var cur []refSegToken
	var tok []rune
	hasLower := false
	flushTok := func() {
		if len(tok) == 0 {
			return
		}
		t := string(tok)
		lt := strings.ToLower(t)
		up := !hasLower && len(tok) >= 2 && len(tok) <= 3
		cur = append(cur, refSegToken{text: lt, upper: up})
		tok = tok[:0]
		hasLower = false
	}
	flushSeg := func() {
		flushTok()
		if len(cur) > 0 {
			segs = append(segs, cur)
			cur = nil
		}
	}
	for _, r := range raw {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '\'':
			if unicode.IsLower(r) {
				hasLower = true
			}
			tok = append(tok, unicode.ToLower(r))
		case r == ',' || r == '/' || r == '|' || r == ';' || r == '•' || r == '·' || r == '~':
			flushSeg()
		case r == '.' || r == '-':
			if r == '-' {
				flushTok()
			}
		default:
			flushTok()
		}
	}
	flushSeg()
	return segs
}

type refSegToken struct {
	text  string
	upper bool
}

// FuzzSegmentDifferential checks the scratch-based segmenter against the
// reference implementation token by token.
func FuzzSegmentDifferential(f *testing.F) {
	seeds := []string{
		"Austin, TX 78701",
		"new orleans, la",
		"Winston-Salem / NC",
		"Washington D.C.",
		"São Paulo • Brasil",
		"KANSAS CITY ~ MO",
		"İstanbul",
		"  ,,;/|  ",
		"melbourne fl",
		"Saint Louis",
		"a'b'c 12345 XY",
		"\xff\xfe broken utf8 \x80",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		want := referenceSplitSegments(raw)

		sc := new(locScratch)
		sc.reset()
		segment(raw, sc)

		if sc.segments() != len(want) {
			t.Fatalf("segment(%q): %d segments, reference %d", raw, sc.segments(), len(want))
		}
		for si := 0; si < sc.segments(); si++ {
			got := sc.segToks(si)
			ref := want[si]
			if len(got) != len(ref) {
				t.Fatalf("segment(%q) seg %d: %d tokens, reference %d", raw, si, len(got), len(ref))
			}
			for k, tok := range got {
				if string(sc.tokBytes(tok)) != ref[k].text {
					t.Errorf("segment(%q) seg %d tok %d: text %q, reference %q",
						raw, si, k, sc.tokBytes(tok), ref[k].text)
				}
				if tok.upper != ref[k].upper {
					t.Errorf("segment(%q) seg %d tok %d (%q): upper=%v, reference %v",
						raw, si, k, sc.tokBytes(tok), tok.upper, ref[k].upper)
				}
			}
		}
	})
}
