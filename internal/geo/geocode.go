package geo

import (
	"math"
	"time"
)

// Accuracy grades how precisely a location string was resolved.
type Accuracy int

// Accuracy levels, least to most precise.
const (
	AccuracyNone    Accuracy = iota // nothing recognizable
	AccuracyCountry                 // country known, state unknown
	AccuracyState                   // US state known
	AccuracyCity                    // US city (implies state)
)

// String returns the accuracy name.
func (a Accuracy) String() string {
	switch a {
	case AccuracyNone:
		return "none"
	case AccuracyCountry:
		return "country"
	case AccuracyState:
		return "state"
	case AccuracyCity:
		return "city"
	}
	return "accuracy(?)"
}

// Location is a resolved user location.
type Location struct {
	Country   string // ISO-like country code ("US", "GB", ...), "" if unknown
	StateCode string // USPS code when Country == "US" and state resolved
	City      string // canonical city name when resolved to a city
	Accuracy  Accuracy
}

// IsUSState reports whether the location resolved to a specific US state
// (or DC/PR), the condition for a user entering the paper's dataset.
func (l Location) IsUSState() bool {
	return l.Country == "US" && l.StateCode != "" && l.Accuracy >= AccuracyState
}

// String renders the location compactly for spans, logs, and status
// pages: "US/CA(city)" for a city-accurate California hit, "GB(country)"
// for a foreign country, "?(none)" when unresolved.
func (l Location) String() string {
	head := l.Country
	if head == "" {
		head = "?"
	}
	if l.StateCode != "" {
		head += "/" + l.StateCode
	}
	return head + "(" + l.Accuracy.String() + ")"
}

// Geocoder resolves free-text, self-reported Twitter profile locations and
// GPS points to US states. It replaces the paper's OpenStreetMap/Nominatim
// calls with an offline gazetteer; see DESIGN.md §2.
//
// A Geocoder is safe for concurrent use once its hooks are set; set them
// before sharing it across goroutines.
type Geocoder struct {
	// OnLocate, when set, observes every profile-string resolution with
	// its outcome and duration — the telemetry layer's window into
	// geocode latency and accuracy mix. Hooks must be cheap; they run on
	// the ingest hot path.
	OnLocate func(loc Location, d time.Duration)
	// OnReverse likewise observes every GPS reverse-geocode; ok mirrors
	// Reverse's second return.
	OnReverse func(loc Location, ok bool, d time.Duration)
}

// NewGeocoder returns a ready Geocoder backed by the package gazetteer.
func NewGeocoder() *Geocoder { return &Geocoder{} }

// ambiguousCodes are two-letter state codes that collide with common
// English words; they are only accepted when written in uppercase or when
// following a comma (as in "new orleans, la").
var ambiguousCodes = map[string]bool{
	"in": true, "ok": true, "or": true, "me": true, "hi": true,
	"de": true, "la": true, "al": true, "oh": true, "id": true,
	"pa": true, "ma": true, "mo": true, "co": true, "so": true,
	"us": true,
}

// usCountryWords are tokens/phrases that assert the USA without naming a
// state.
var usCountryWords = map[string]bool{
	"usa": true, "united states": true, "united states of america": true,
	"america": true, "estados unidos": true, "murica": true,
}

// Locate resolves a self-reported profile location string. It never
// errors: unresolvable strings return a Location with AccuracyNone.
//
// Resolution strategy, mirroring how Nominatim ranks results:
//  1. Gather candidate matches from every contiguous 1–3 token phrase:
//     state codes (with the uppercase/after-comma guard for codes that are
//     English words), state names, city names, city aliases, foreign
//     countries and major foreign cities, and bare-country words.
//  2. A city + state pair that agree win (city accuracy). An explicit
//     state code beats a state-name match ("washington dc" is DC, not WA).
//  3. A lone state wins over a lone city only when the city's best
//     interpretation is foreign; otherwise city implies its state.
//  4. A US city name that is also a major foreign city ("melbourne",
//     "vancouver") resolves to the larger population unless a US state
//     hint is present.
//  5. Bare country words give country accuracy.
func (g *Geocoder) Locate(raw string) Location {
	if g.OnLocate == nil {
		return g.locate(raw)
	}
	start := time.Now()
	loc := g.locate(raw)
	g.OnLocate(loc, time.Since(start))
	return loc
}

func (g *Geocoder) locate(raw string) Location {
	sc := locScratchPool.Get().(*locScratch)
	defer locScratchPool.Put(sc)
	sc.reset()
	segment(raw, sc)
	totalSegs := sc.segments()
	if totalSegs == 0 {
		return Location{}
	}

	var (
		stateCode    string // from explicit code
		cityBest     *City  // most populous US city candidate
		foreignName  string
		foreignCity  foreignPlace
		sawUSCountry bool
	)

	for si := 0; si < totalSegs; si++ {
		seg := sc.segToks(si)
		for i := 0; i < len(seg); i++ {
			for j := i; j < len(seg) && j < i+4; j++ {
				p := sc.phraseBytes(seg, i, j)
				if i == j && len(p) == 2 {
					if st, ok := stateByLowerCode[string(p)]; ok {
						accept := seg[i].upper ||
							!ambiguousCodes[string(p)] ||
							(si > 0 && si == totalSegs-1) ||
							(si == totalSegs-1 && i == len(seg)-1 && totalSegs > 1)
						// A trailing ambiguous code in a one-segment
						// string ("melbourne fl") is accepted when
						// another token precedes it.
						if !accept && totalSegs == 1 && i == len(seg)-1 && i > 0 {
							accept = !ambiguousCodes[string(p)] || seg[i].upper
						}
						if accept && string(p) != "us" {
							stateCode = st.Code
						}
					}
				}
				if i == j && len(p) == 5 && allDigitsBytes(p) {
					// A 5-digit token is read as a ZIP code; the prefix
					// pins the state as firmly as an explicit code.
					prefix := int(p[0]-'0')*100 + int(p[1]-'0')*10 + int(p[2]-'0')
					if st, ok := zipStateFromPrefix(prefix); ok && stateCode == "" {
						stateCode = st
					}
				}
				if st, ok := stateByName[string(p)]; ok {
					sc.stateNames = append(sc.stateNames, nameHit{st.Code, locSpan{si, i, j}})
				}
				if usCountryWords[string(p)] || (string(p) == "us" && seg[i].upper) {
					sawUSCountry = true
				}
				if al, ok := cityAliases[string(p)]; ok {
					for _, c := range cityIndex[al.name] {
						if c.StateCode == al.state {
							sc.cityMatches = append(sc.cityMatches, cityHit{*c, locSpan{si, i, j}})
						}
					}
				}
				if list, ok := cityIndex[string(p)]; ok {
					for _, c := range list {
						sc.cityMatches = append(sc.cityMatches, cityHit{*c, locSpan{si, i, j}})
					}
				}
				if fc, ok := foreignCities[string(p)]; ok {
					if fc.Population > foreignCity.Population {
						foreignCity = fc
					}
				}
				if cc, ok := foreignCountries[string(p)]; ok {
					foreignName = cc
				}
			}
		}
	}

	// A state-name match that sits strictly inside a longer matched city
	// phrase is part of the city name, not a hint: "Kansas City" must not
	// read as the state of Kansas.
	stateName := ""
	for _, sn := range sc.stateNames {
		swallowed := false
		for _, ch := range sc.cityMatches {
			if ch.at.seg == sn.at.seg && ch.at.i <= sn.at.i && ch.at.j >= sn.at.j &&
				(ch.at.j-ch.at.i) > (sn.at.j-sn.at.i) {
				swallowed = true
				break
			}
		}
		if !swallowed {
			stateName = sn.code
		}
	}

	stateHint := stateCode
	if stateHint == "" {
		stateHint = stateName
	}

	// City + agreeing state → city accuracy.
	if stateHint != "" {
		for _, ch := range sc.cityMatches {
			if ch.city.StateCode == stateHint {
				return Location{Country: "US", StateCode: ch.city.StateCode, City: ch.city.Name, Accuracy: AccuracyCity}
			}
		}
		// Explicit state beats a disagreeing or missing city.
		return Location{Country: "US", StateCode: stateHint, Accuracy: AccuracyState}
	}

	// Pick the most populous US city candidate.
	for i := range sc.cityMatches {
		if cityBest == nil || sc.cityMatches[i].city.Population > cityBest.Population {
			cityBest = &sc.cityMatches[i].city
		}
	}

	if cityBest != nil {
		// A same-named major foreign city outranks by population unless
		// the US country was asserted.
		if foreignCity.Country != "" && foreignCity.Population > cityBest.Population && !sawUSCountry {
			return Location{Country: foreignCity.Country, Accuracy: AccuracyCity}
		}
		return Location{Country: "US", StateCode: cityBest.StateCode, City: cityBest.Name, Accuracy: AccuracyCity}
	}

	if foreignCity.Country != "" && !sawUSCountry {
		return Location{Country: foreignCity.Country, Accuracy: AccuracyCity}
	}
	if foreignName != "" && !sawUSCountry {
		return Location{Country: foreignName, Accuracy: AccuracyCountry}
	}
	if sawUSCountry {
		return Location{Country: "US", Accuracy: AccuracyCountry}
	}
	return Location{}
}

// reverseCityRadiusDeg bounds how far (in degrees, roughly 90 km) the
// nearest gazetteer city may be for a point to take that city's state.
const reverseCityRadiusDeg = 0.8

// Reverse resolves a GPS point to a US state the way a feature-based
// reverse geocoder does: the nearest gazetteer city within
// reverseCityRadiusDeg wins (state hulls overlap far too much near
// borders for a box test alone); points with no nearby city fall back to
// the smallest containing state bounding box. ok is false when neither
// strategy matches — the point is outside the USA.
func (g *Geocoder) Reverse(lat, lon float64) (Location, bool) {
	if g.OnReverse == nil {
		return g.reverse(lat, lon)
	}
	start := time.Now()
	loc, ok := g.reverse(lat, lon)
	g.OnReverse(loc, ok, time.Since(start))
	return loc, ok
}

func (g *Geocoder) reverse(lat, lon float64) (Location, bool) {
	// Nearest city, equirectangular squared distance with the longitude
	// axis compressed by cos(lat).
	coslat := math.Cos(lat * math.Pi / 180)
	var bestCity *City
	bestD := math.Inf(1)
	for i := range cities {
		c := &cities[i]
		dlat := c.Lat - lat
		dlon := (c.Lon - lon) * coslat
		d := dlat*dlat + dlon*dlon
		if d < bestD {
			bestD, bestCity = d, c
		}
	}
	if bestCity != nil && bestD <= reverseCityRadiusDeg*reverseCityRadiusDeg {
		return Location{Country: "US", StateCode: bestCity.StateCode, Accuracy: AccuracyState}, true
	}
	// Rural fallback: smallest containing box (DC sits inside Maryland's
	// hull, so smaller is more specific).
	var best *State
	var bestArea float64
	for i := range states {
		b := states[i].Box
		if !b.Contains(lat, lon) {
			continue
		}
		area := (b.MaxLat - b.MinLat) * (b.MaxLon - b.MinLon)
		if best == nil || area < bestArea {
			best, bestArea = &states[i], area
		}
	}
	if best == nil {
		return Location{}, false
	}
	return Location{Country: "US", StateCode: best.Code, Accuracy: AccuracyState}, true
}
